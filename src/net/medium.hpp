#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/gilbert_elliott.hpp"
#include "net/energy.hpp"
#include "net/packet.hpp"
#include "net/radio.hpp"
#include "obs/packet_trace.hpp"
#include "sim/node_state.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace wmsn::net {

/// What the medium needs to know about the node population. Implemented by
/// SensorNetwork; keeps Medium free of ownership cycles.
class MediumHost {
 public:
  virtual ~MediumHost() = default;

  virtual std::size_t nodeCount() const = 0;
  virtual Point positionOf(NodeId id) const = 0;
  virtual bool aliveOf(NodeId id) const = 0;
  /// Alive AND radio on — frames only reach listening nodes (§4.4 sleep
  /// scheduling turns radios off).
  virtual bool listeningOf(NodeId id) const = 0;

  /// Energy charges; the host applies them to the node's battery and handles
  /// node death.
  virtual void chargeTx(NodeId id, double joules) = 0;
  virtual void chargeRx(NodeId id, double joules) = 0;

  /// A frame addressed to `to` (unicast match or broadcast) decoded
  /// successfully.
  virtual void deliverFrame(NodeId to, const Packet& packet, NodeId from) = 0;

  /// Traffic accounting hooks.
  virtual void noteTransmit(PacketKind kind, std::size_t bytes) = 0;
  virtual void noteCollision() = 0;
};

struct MediumParams {
  double bitrateBps = 250'000.0;  ///< 802.15.4 payload bitrate
  bool collisions = true;         ///< overlapping receptions corrupt frames
  /// 802.15.4 AUTO-ACK link-layer ARQ: unicast frames that the addressed
  /// receiver fails to decode are retransmitted (macMaxFrameRetries).
  bool unicastArq = true;
  std::uint32_t maxArqRetries = 3;
  sim::Time arqTurnaround = sim::Time::microseconds(864);  ///< ACK wait
  std::size_t ackFrameBytes = 11;  ///< immediate-ACK frame size
  /// Bursty link impairment (fault injection): each receiver runs its own
  /// Gilbert–Elliott chain, stepped once per short-range frame it hears.
  /// The chains draw from their own RNG streams (derived from
  /// `linkLossSeed`, not the medium's), so disabling the model reproduces
  /// the unimpaired run byte-for-byte.
  fault::GilbertElliottParams linkLoss;
  std::uint64_t linkLossSeed = 0;
};

/// Shared broadcast radio channel. Every frame physically reaches all alive
/// nodes within radio range of the sender: all of them pay RX energy (radios
/// must decode the header before filtering), all of them can collide, and
/// the host delivers the frame to those the addressing matches — which is
/// exactly what lets routing protocols overhear and adversaries eavesdrop.
///
/// In-range candidates come from the network's sim::SpatialGrid (wired in
/// via setHotState right after construction), so a transmission costs O(k)
/// in the local neighborhood instead of the O(n) all-nodes sweep it used to.
/// Carrier sense and collision state are per-node — a busy-until horizon and
/// a per-receiver reception list — so neither ever scans a global vector.
class Medium {
 public:
  Medium(sim::Simulator& simulator, const RadioModel& radio,
         const EnergyParams& energy, MediumHost& host, MediumParams params,
         Rng rng);

  /// Wires in the struct-of-arrays hot state (positions + spatial grid).
  /// Must be set before the first transmit; SensorNetwork does so in its
  /// constructor.
  void setHotState(const sim::NodeStateBlock* hot) { hot_ = hot; }

  /// Begin transmitting `packet` from node `from` at fixed power (nominal
  /// range). Delivery callbacks fire when the frame's air time elapses.
  /// Unicast frames get link-layer ARQ (see MediumParams::unicastArq).
  void transmit(NodeId from, Packet packet);

  /// Power-amplified point-to-point transmission over `distance` metres,
  /// bypassing the normal range limit — models LEACH's cluster-head → sink
  /// long-haul sends. No interference with the short-range channel.
  void transmitLongRange(NodeId from, NodeId to, Packet packet);

  /// Carrier sense: is any transmission in progress audible at `at`?
  bool channelBusy(NodeId at) const;

  /// Promiscuous mode: the node's radio delivers frames regardless of the
  /// link-layer destination. Honest sensor stacks never enable this; it is
  /// the eavesdropping primitive of the adversary models.
  void setPromiscuous(NodeId id, bool enabled);
  bool isPromiscuous(NodeId id) const { return promiscuous_.contains(id); }

  sim::Time airTime(const Packet& packet) const;

  /// Causal trace pipeline hookup (SensorNetwork wires its tracer in right
  /// after construction). nullptr disables medium-level span emission.
  void setTracer(obs::PacketTracer* tracer) { tracer_ = tracer; }

  std::uint64_t framesTransmitted() const { return framesTransmitted_; }
  std::uint64_t framesCorrupted() const { return framesCorrupted_; }
  std::uint64_t arqRetransmissions() const { return arqRetransmissions_; }
  /// Frames a receiver would have decoded but for Gilbert–Elliott loss.
  std::uint64_t framesLinkFaultDropped() const {
    return framesLinkFaultDropped_;
  }

 private:
  struct Reception {
    NodeId receiver;
    sim::Time start;
    sim::Time end;
    bool corrupted = false;
  };

  void transmitAttempt(NodeId from, Packet packet, std::uint32_t retriesLeft);
  fault::GilbertElliottChain& chainFor(NodeId rx);

  sim::Simulator& simulator_;
  const RadioModel& radio_;
  const EnergyParams& energy_;
  MediumHost& host_;
  MediumParams params_;
  Rng rng_;
  obs::PacketTracer* tracer_ = nullptr;
  const sim::NodeStateBlock* hot_ = nullptr;

  /// Per-node carrier-sense horizon: the latest end time of any transmission
  /// whose sender was in range of this node when it keyed up. channelBusy is
  /// one array read; no transmission list is kept, let alone scanned.
  std::vector<sim::Time> busyUntil_;
  /// Per-receiver in-flight receptions (collision bookkeeping). Expired
  /// entries are pruned inline whenever a receiver gains a new reception.
  std::vector<std::vector<std::shared_ptr<Reception>>> rxOngoing_;
  /// Scratch for grid candidate queries — reused across transmissions.
  std::vector<std::uint32_t> scratch_;
  std::unordered_set<NodeId> promiscuous_;
  std::uint64_t framesTransmitted_ = 0;
  std::uint64_t framesCorrupted_ = 0;
  std::uint64_t arqRetransmissions_ = 0;
  std::unordered_map<NodeId, fault::GilbertElliottChain> linkChains_;
  std::uint64_t framesLinkFaultDropped_ = 0;
};

}  // namespace wmsn::net
