#include "net/node.hpp"

namespace wmsn::net {

Node::Node(NodeId id, NodeKind kind, Point position, Battery battery, Rng rng)
    : id_(id),
      kind_(kind),
      position_(position),
      battery_(battery),
      rng_(rng) {}

void Node::kill(sim::Time when) {
  if (!alive_) return;
  alive_ = false;
  deathTime_ = when;
}

}  // namespace wmsn::net
