#include "net/node.hpp"

namespace wmsn::net {

Node::Node(NodeId id, NodeKind kind, sim::NodeStateBlock& block,
           std::vector<Battery>& batteries, Rng rng)
    : id_(id), kind_(kind), block_(&block), batteries_(&batteries),
      rng_(rng) {}

void Node::kill(sim::Time when) {
  if (block_->dead(id_)) return;
  block_->setDead(id_);
  deathTime_ = when;
}

}  // namespace wmsn::net
