#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/energy.hpp"
#include "net/geometry.hpp"
#include "net/mac.hpp"
#include "net/packet.hpp"
#include "sim/node_state.hpp"
#include "util/random.hpp"

namespace wmsn::net {

enum class NodeKind : std::uint8_t {
  kSensor,   ///< 802.15.4-only leaf, battery-limited
  kGateway,  ///< WMG: sink of the sensor tier, router of the mesh tier
};

/// One device in a sensor network: identity, link layer, and an upcall to
/// whatever protocol stack is attached. The hot per-node state the kernel
/// sweeps every round — position, liveness flags, battery — lives in the
/// network's struct-of-arrays sim::NodeStateBlock / battery array; a Node is
/// a view over its slot, so the old per-object accessors keep working while
/// the sweeps run over dense memory.
class Node {
 public:
  using ReceiveHandler = std::function<void(const Packet&, NodeId from)>;

  Node(NodeId id, NodeKind kind, sim::NodeStateBlock& block,
       std::vector<Battery>& batteries, Rng rng);

  NodeId id() const { return id_; }
  NodeKind kind() const { return kind_; }
  bool isGateway() const { return kind_ == NodeKind::kGateway; }

  Point position() const { return Point{block_->x(id_), block_->y(id_)}; }
  void setPosition(Point p) { block_->setPosition(id_, p.x, p.y); }

  Battery& battery() { return (*batteries_)[id_]; }
  const Battery& battery() const { return (*batteries_)[id_]; }

  bool alive() const { return block_->alive(id_); }
  void kill(sim::Time when);
  std::optional<sim::Time> deathTime() const { return deathTime_; }

  /// Fault injection: a failed node behaves exactly like a dead one (radio
  /// off, no processing) but keeps its battery, and — unlike kill() — the
  /// condition is reversible and does not count toward lifetime metrics
  /// (deathTime stays unset unless the battery actually empties).
  bool failed() const { return block_->failed(id_); }
  void setFailed(bool failed) { block_->setFailed(id_, failed); }

  /// Sleep scheduling (§4.4): a sleeping node's radio is off — it neither
  /// receives nor pays RX energy, but it may still wake briefly to transmit
  /// its own readings (duty-cycled sensing).
  bool sleeping() const { return block_->sleeping(id_); }
  void setSleeping(bool sleeping) { block_->setSleeping(id_, sleeping); }
  /// Awake and alive — what the medium checks before delivering a frame.
  bool listening() const { return block_->listening(id_); }

  void setMac(std::unique_ptr<Mac> mac) { mac_ = std::move(mac); }
  Mac& mac() { return *mac_; }
  const Mac& mac() const { return *mac_; }

  void setReceiveHandler(ReceiveHandler handler) {
    receiveHandler_ = std::move(handler);
  }
  void receive(const Packet& packet, NodeId from) {
    if (alive() && receiveHandler_) receiveHandler_(packet, from);
  }

  Rng& rng() { return rng_; }

 private:
  NodeId id_;
  NodeKind kind_;
  sim::NodeStateBlock* block_;
  std::vector<Battery>* batteries_;
  std::optional<sim::Time> deathTime_;
  std::unique_ptr<Mac> mac_;
  ReceiveHandler receiveHandler_;
  Rng rng_;
};

}  // namespace wmsn::net
