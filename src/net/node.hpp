#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/energy.hpp"
#include "net/geometry.hpp"
#include "net/mac.hpp"
#include "net/packet.hpp"
#include "util/random.hpp"

namespace wmsn::net {

enum class NodeKind : std::uint8_t {
  kSensor,   ///< 802.15.4-only leaf, battery-limited
  kGateway,  ///< WMG: sink of the sensor tier, router of the mesh tier
};

/// One device in a sensor network: identity, position, battery, link layer,
/// and an upcall to whatever protocol stack is attached.
class Node {
 public:
  using ReceiveHandler = std::function<void(const Packet&, NodeId from)>;

  Node(NodeId id, NodeKind kind, Point position, Battery battery, Rng rng);

  NodeId id() const { return id_; }
  NodeKind kind() const { return kind_; }
  bool isGateway() const { return kind_ == NodeKind::kGateway; }

  const Point& position() const { return position_; }
  void setPosition(Point p) { position_ = p; }

  Battery& battery() { return battery_; }
  const Battery& battery() const { return battery_; }

  bool alive() const { return alive_ && !failed_; }
  void kill(sim::Time when);
  std::optional<sim::Time> deathTime() const { return deathTime_; }

  /// Fault injection: a failed node behaves exactly like a dead one (radio
  /// off, no processing) but keeps its battery, and — unlike kill() — the
  /// condition is reversible and does not count toward lifetime metrics
  /// (deathTime stays unset unless the battery actually empties).
  bool failed() const { return failed_; }
  void setFailed(bool failed) { failed_ = failed; }

  /// Sleep scheduling (§4.4): a sleeping node's radio is off — it neither
  /// receives nor pays RX energy, but it may still wake briefly to transmit
  /// its own readings (duty-cycled sensing).
  bool sleeping() const { return sleeping_; }
  void setSleeping(bool sleeping) { sleeping_ = sleeping; }
  /// Awake and alive — what the medium checks before delivering a frame.
  bool listening() const { return alive() && !sleeping_; }

  void setMac(std::unique_ptr<Mac> mac) { mac_ = std::move(mac); }
  Mac& mac() { return *mac_; }
  const Mac& mac() const { return *mac_; }

  void setReceiveHandler(ReceiveHandler handler) {
    receiveHandler_ = std::move(handler);
  }
  void receive(const Packet& packet, NodeId from) {
    if (alive() && receiveHandler_) receiveHandler_(packet, from);
  }

  Rng& rng() { return rng_; }

 private:
  NodeId id_;
  NodeKind kind_;
  Point position_;
  Battery battery_;
  bool alive_ = true;
  bool failed_ = false;
  bool sleeping_ = false;
  std::optional<sim::Time> deathTime_;
  std::unique_ptr<Mac> mac_;
  ReceiveHandler receiveHandler_;
  Rng rng_;
};

}  // namespace wmsn::net
