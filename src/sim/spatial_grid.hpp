#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wmsn::sim {

/// Uniform-cell spatial hash over node positions — the neighbor index that
/// replaces the kernel's former O(n²) range scans (ROADMAP item 1). Nodes
/// are bucketed by floor(position / cellSize); a radius-r query visits only
/// the cells whose bounding boxes intersect the disk, so per-query cost is
/// O(k) in the local population instead of O(n) in the network size.
///
/// The index returns a *superset*: every node in an intersecting cell, not
/// just the ones inside the disk. Callers apply the exact range predicate
/// (RadioModel::linked) themselves — keeping the one true link definition in
/// the radio model, with the grid as a pure candidate pre-filter. With
/// cellSize equal to the radio's nominal range the query touches at most a
/// 3×3 cell block, bounding candidates at ~9× the expected neighbor count.
///
/// Determinism: query() sorts candidates ascending by id before returning,
/// so callers visit nodes in exactly the order the old 0..n-1 scan did —
/// the property the byte-identity gates (same RNG draw sites, same frame
/// delivery order) depend on.
class SpatialGrid {
 public:
  explicit SpatialGrid(double cellSize);

  /// Number of indexed nodes.
  std::size_t size() const { return cellKeyOf_.size(); }
  double cellSize() const { return cellSize_; }

  /// Registers node `id` at (x, y). Ids must arrive densely: id == size().
  void insert(std::uint32_t id, double x, double y);

  /// Re-buckets `id` after a position change (gateway moves, §5.1). A move
  /// within the same cell is free.
  void move(std::uint32_t id, double x, double y);

  /// Appends to `out` (cleared first) every id whose cell intersects the
  /// axis-aligned bounding square of the disk centred at (cx, cy) with
  /// radius `radius`, sorted ascending. Superset semantics — see above.
  void query(double cx, double cy, double radius,
             std::vector<std::uint32_t>& out) const;

 private:
  std::int64_t coord(double v) const;
  static std::uint64_t key(std::int64_t qx, std::int64_t qy);

  double cellSize_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::vector<std::uint64_t> cellKeyOf_;  ///< id → current cell key
};

}  // namespace wmsn::sim
