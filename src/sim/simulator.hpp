#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace wmsn::sim {

/// Discrete-event simulator: a clock plus an event queue. Single-threaded by
/// design — parallelism in the benchmark harness comes from running many
/// independent Simulator instances concurrently (one per scenario/seed),
/// which is both faster and deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `action` to run `delay` after the current time.
  /// Requires delay >= 0.
  EventId schedule(Time delay, std::function<void()> action);

  /// Schedule `action` at an absolute time >= now().
  EventId scheduleAt(Time when, std::function<void()> action);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains, `limit` events fire, or stop() is called.
  /// Returns the number of events processed.
  std::uint64_t run(std::uint64_t limit =
                        std::numeric_limits<std::uint64_t>::max());

  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` still fire), the queue drains, or stop() is called.
  /// Afterwards now() == max(now, deadline) if the deadline was reached.
  std::uint64_t runUntil(Time deadline);

  /// Stops the run loop after the current event finishes.
  void stop() { stopped_ = true; }

  bool pendingEvents() const { return !queue_.empty(); }
  std::size_t queueSize() const { return queue_.size(); }
  std::uint64_t eventsProcessed() const { return eventsProcessed_; }

  /// Resets the clock and clears all pending events.
  void reset();

 private:
  void dispatchOne();

  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  std::uint64_t eventsProcessed_ = 0;
};

}  // namespace wmsn::sim
