#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace wmsn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Priority queue of timed callbacks with stable ordering: events at the same
/// timestamp fire in insertion order (the sequence number breaks ties), so a
/// simulation never depends on heap-internal ordering. Cancellation is lazy —
/// cancelled ids are skipped at pop time — which keeps push/pop O(log n).
class EventQueue {
 public:
  struct Event {
    Time time;
    EventId id = kInvalidEvent;
    std::function<void()> action;
  };

  EventId push(Time time, std::function<void()> action);

  /// Marks an event as cancelled. Returns false if the id was never scheduled
  /// or already fired/cancelled.
  bool cancel(EventId id);

  bool empty() const { return liveCount_ == 0; }
  std::size_t size() const { return liveCount_; }

  /// Time of the earliest live event. Requires !empty().
  Time nextTime();

  /// Removes and returns the earliest live event. Requires !empty().
  Event pop();

  void clear();

 private:
  struct Entry {
    Time time;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;  // ids are issued monotonically → FIFO at same time
    }
  };

  void dropCancelledFront();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  // Actions stored separately so cancel() can release the closure promptly.
  std::unordered_map<EventId, std::function<void()>> actions_;
  EventId nextId_ = 1;
  std::size_t liveCount_ = 0;
};

}  // namespace wmsn::sim
