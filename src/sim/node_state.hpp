#pragma once

#include <cstdint>
#include <vector>

#include "sim/spatial_grid.hpp"

namespace wmsn::sim {

/// Struct-of-arrays hot state for the node population: position and
/// liveness flags, packed into parallel vectors so the kernel's sweeps
/// (medium delivery, neighbor queries, round stepping) touch dense memory
/// instead of chasing one heap allocation per node. Owned by the network;
/// net::Node instances are thin views over one slot each.
///
/// The block also owns the SpatialGrid (kept in sync on every position
/// change) and the *active set* — the sorted ids of nodes that are neither
/// battery-dead nor fault-crashed. The round loop steps exactly this set,
/// so idle corpses cost nothing (ROADMAP item 1). Sleeping nodes stay in
/// the active set: a duty-cycled sensor still wakes to transmit (§4.4).
class NodeStateBlock {
 public:
  explicit NodeStateBlock(double cellSize) : grid_(cellSize) {}

  std::uint32_t add(double x, double y);
  std::size_t size() const { return xs_.size(); }

  double x(std::uint32_t id) const { return xs_[id]; }
  double y(std::uint32_t id) const { return ys_[id]; }
  void setPosition(std::uint32_t id, double x, double y);

  /// Battery death — permanent, counts toward lifetime metrics.
  bool dead(std::uint32_t id) const { return (flags_[id] & kDead) != 0; }
  void setDead(std::uint32_t id);

  /// Fault-injected crash — reversible, battery intact.
  bool failed(std::uint32_t id) const { return (flags_[id] & kFailed) != 0; }
  void setFailed(std::uint32_t id, bool failed);

  /// §4.4 sleep scheduling — radio off, but the node still steps.
  bool sleeping(std::uint32_t id) const {
    return (flags_[id] & kSleeping) != 0;
  }
  void setSleeping(std::uint32_t id, bool sleeping);

  bool alive(std::uint32_t id) const {
    return (flags_[id] & (kDead | kFailed)) == 0;
  }
  bool listening(std::uint32_t id) const {
    return (flags_[id] & (kDead | kFailed | kSleeping)) == 0;
  }

  const SpatialGrid& grid() const { return grid_; }

  /// Ids of nodes that take part in round stepping (alive — dead and failed
  /// nodes are excluded; sleeping ones are not). Sorted ascending; rebuilt
  /// lazily after flag changes, so steady-state rounds pay nothing.
  const std::vector<std::uint32_t>& activeIds() const;

 private:
  static constexpr std::uint8_t kDead = 1;
  static constexpr std::uint8_t kFailed = 2;
  static constexpr std::uint8_t kSleeping = 4;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::uint8_t> flags_;
  SpatialGrid grid_;
  mutable std::vector<std::uint32_t> active_;
  mutable bool activeDirty_ = false;
};

}  // namespace wmsn::sim
