#include "sim/simulator.hpp"

#include "obs/profiler.hpp"
#include "util/require.hpp"

namespace wmsn::sim {

EventId Simulator::schedule(Time delay, std::function<void()> action) {
  WMSN_REQUIRE_MSG(delay.us >= 0, "cannot schedule into the past");
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::scheduleAt(Time when, std::function<void()> action) {
  WMSN_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
  return queue_.push(when, std::move(action));
}

void Simulator::dispatchOne() {
  EventQueue::Event ev = queue_.pop();
  now_ = ev.time;
  ++eventsProcessed_;
  WMSN_PROFILE_PHASE(kEventDispatch);
  ev.action();
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  stopped_ = false;
  std::uint64_t processed = 0;
  while (!stopped_ && processed < limit && !queue_.empty()) {
    dispatchOne();
    ++processed;
  }
  return processed;
}

std::uint64_t Simulator::runUntil(Time deadline) {
  stopped_ = false;
  std::uint64_t processed = 0;
  while (!stopped_ && !queue_.empty() && queue_.nextTime() <= deadline) {
    dispatchOne();
    ++processed;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return processed;
}

void Simulator::reset() {
  queue_.clear();
  now_ = Time::zero();
  stopped_ = false;
  eventsProcessed_ = 0;
}

}  // namespace wmsn::sim
