#include "sim/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace wmsn::sim {

namespace {
// Centre of the signed cell-coordinate space: positions may be (slightly)
// negative, so cell coordinates are biased into unsigned range before
// packing two of them into one 64-bit key.
constexpr std::int64_t kBias = std::int64_t{1} << 31;
}  // namespace

SpatialGrid::SpatialGrid(double cellSize) : cellSize_(cellSize) {
  WMSN_REQUIRE_MSG(cellSize > 0.0, "grid cell size must be positive");
}

std::int64_t SpatialGrid::coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cellSize_));
}

std::uint64_t SpatialGrid::key(std::int64_t qx, std::int64_t qy) {
  WMSN_REQUIRE(qx > -kBias && qx < kBias && qy > -kBias && qy < kBias);
  return (static_cast<std::uint64_t>(qx + kBias) << 32) |
         static_cast<std::uint64_t>(qy + kBias);
}

void SpatialGrid::insert(std::uint32_t id, double x, double y) {
  WMSN_REQUIRE_MSG(id == cellKeyOf_.size(), "grid ids must be dense");
  const std::uint64_t k = key(coord(x), coord(y));
  cells_[k].push_back(id);
  cellKeyOf_.push_back(k);
}

void SpatialGrid::move(std::uint32_t id, double x, double y) {
  WMSN_REQUIRE(id < cellKeyOf_.size());
  const std::uint64_t k = key(coord(x), coord(y));
  const std::uint64_t old = cellKeyOf_[id];
  if (k == old) return;
  auto& bucket = cells_[old];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  if (bucket.empty()) cells_.erase(old);
  cells_[k].push_back(id);
  cellKeyOf_[id] = k;
}

void SpatialGrid::query(double cx, double cy, double radius,
                        std::vector<std::uint32_t>& out) const {
  out.clear();
  const std::int64_t x0 = coord(cx - radius);
  const std::int64_t x1 = coord(cx + radius);
  const std::int64_t y0 = coord(cy - radius);
  const std::int64_t y1 = coord(cy + radius);
  for (std::int64_t qx = x0; qx <= x1; ++qx) {
    for (std::int64_t qy = y0; qy <= y1; ++qy) {
      const auto it = cells_.find(key(qx, qy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  // Cell buckets are unordered after moves; the ascending sort restores the
  // visit order the deterministic draw sites require.
  std::sort(out.begin(), out.end());
}

}  // namespace wmsn::sim
