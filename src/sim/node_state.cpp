#include "sim/node_state.hpp"

#include "util/require.hpp"

namespace wmsn::sim {

std::uint32_t NodeStateBlock::add(double x, double y) {
  const auto id = static_cast<std::uint32_t>(xs_.size());
  xs_.push_back(x);
  ys_.push_back(y);
  flags_.push_back(0);
  grid_.insert(id, x, y);
  activeDirty_ = true;
  return id;
}

void NodeStateBlock::setPosition(std::uint32_t id, double x, double y) {
  WMSN_REQUIRE(id < xs_.size());
  xs_[id] = x;
  ys_[id] = y;
  grid_.move(id, x, y);
}

void NodeStateBlock::setDead(std::uint32_t id) {
  WMSN_REQUIRE(id < flags_.size());
  flags_[id] |= kDead;
  activeDirty_ = true;
}

void NodeStateBlock::setFailed(std::uint32_t id, bool failed) {
  WMSN_REQUIRE(id < flags_.size());
  if (failed)
    flags_[id] |= kFailed;
  else
    flags_[id] &= static_cast<std::uint8_t>(~kFailed);
  activeDirty_ = true;
}

void NodeStateBlock::setSleeping(std::uint32_t id, bool sleeping) {
  WMSN_REQUIRE(id < flags_.size());
  if (sleeping)
    flags_[id] |= kSleeping;
  else
    flags_[id] &= static_cast<std::uint8_t>(~kSleeping);
}

const std::vector<std::uint32_t>& NodeStateBlock::activeIds() const {
  if (activeDirty_) {
    active_.clear();
    for (std::uint32_t id = 0; id < flags_.size(); ++id)
      if (alive(id)) active_.push_back(id);
    activeDirty_ = false;
  }
  return active_;
}

}  // namespace wmsn::sim
