#pragma once

#include <cstdint>
#include <string>

namespace wmsn::sim {

/// Simulation time in integer microseconds. Integer ticks (not double
/// seconds) make event ordering exact and runs bit-reproducible.
struct Time {
  std::int64_t us = 0;

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time d) const { return Time{us + d.us}; }
  constexpr Time operator-(Time d) const { return Time{us - d.us}; }
  constexpr Time& operator+=(Time d) {
    us += d.us;
    return *this;
  }

  constexpr double seconds() const { return static_cast<double>(us) * 1e-6; }
  constexpr double millis() const { return static_cast<double>(us) * 1e-3; }

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time microseconds(std::int64_t v) { return Time{v}; }
  static constexpr Time milliseconds(std::int64_t v) { return Time{v * 1000}; }
  static constexpr Time seconds(double v) {
    return Time{static_cast<std::int64_t>(v * 1e6)};
  }
};

inline std::string toString(Time t) {
  return std::to_string(t.seconds()) + "s";
}

}  // namespace wmsn::sim
