#include "sim/event_queue.hpp"

#include "util/require.hpp"

namespace wmsn::sim {

EventId EventQueue::push(Time time, std::function<void()> action) {
  WMSN_REQUIRE(action != nullptr);
  const EventId id = nextId_++;
  heap_.push(Entry{time, id});
  actions_.emplace(id, std::move(action));
  ++liveCount_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id);
  --liveCount_;
  return true;
}

void EventQueue::dropCancelledFront() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::nextTime() {
  WMSN_REQUIRE(!empty());
  dropCancelledFront();
  return heap_.top().time;
}

EventQueue::Event EventQueue::pop() {
  WMSN_REQUIRE(!empty());
  dropCancelledFront();
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = actions_.find(entry.id);
  Event ev{entry.time, entry.id, std::move(it->second)};
  actions_.erase(it);
  --liveCount_;
  return ev;
}

void EventQueue::clear() {
  heap_ = {};
  cancelled_.clear();
  actions_.clear();
  liveCount_ = 0;
}

}  // namespace wmsn::sim
