#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace wmsn::workload {

std::string toString(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLegacyRounds: return "legacy-rounds";
    case WorkloadKind::kPeriodic: return "periodic";
    case WorkloadKind::kPoisson: return "poisson";
    case WorkloadKind::kBurst: return "burst";
  }
  return "unknown";
}

// --- PeriodicGenerator ------------------------------------------------------

PeriodicGenerator::PeriodicGenerator(double ratePerSensor, std::uint64_t seed,
                                     double jitterSeconds)
    : interval_(sim::Time::seconds(1.0 / ratePerSensor)),
      seed_(seed),
      jitter_(sim::Time::seconds(jitterSeconds)) {
  WMSN_REQUIRE_MSG(ratePerSensor > 0.0, "periodic rate must be positive");
  WMSN_REQUIRE(interval_.us > 0);
  WMSN_REQUIRE_MSG(jitter_.us >= 0 && jitter_ < interval_,
                   "cbr jitter must stay below the beat interval");
}

std::vector<Arrival> PeriodicGenerator::arrivalsInWindow(
    std::uint32_t /*round*/, sim::Time windowStart, sim::Time windowEnd,
    const std::vector<SensorInfo>& sensors) {
  std::vector<Arrival> out;
  for (const SensorInfo& s : sensors) {
    // Stable phase: the sensor's cadence is anchored at t=0 + phase for the
    // whole run regardless of how rounds slice the timeline.
    SplitMix64 mix(seed_ ^ (0x9e3779b97f4a7c15ULL * (s.id + 1)));
    const std::int64_t phase =
        static_cast<std::int64_t>(mix.next() % static_cast<std::uint64_t>(
                                                   interval_.us));
    std::int64_t k = (windowStart.us - phase + interval_.us - 1) / interval_.us;
    if (k < 0) k = 0;
    for (sim::Time t{phase + k * interval_.us}; t < windowEnd;
         t += interval_, ++k) {
      sim::Time at = t;
      // wmsn:fixed-draws — gated on a config constant; the beat hash is
      // keyed by (sensor, beat index), not by stream position.
      if (jitter_.us > 0) {
        // Beat-indexed hash, not a stream draw: the k-th beat's slop is the
        // same however the rounds slice the timeline.
        SplitMix64 beat(seed_ ^ (0xc2b2ae3d27d4eb4fULL * (s.id + 1)) ^
                        static_cast<std::uint64_t>(k));
        at += sim::Time::microseconds(static_cast<std::int64_t>(
            beat.next() % static_cast<std::uint64_t>(jitter_.us)));
      }
      out.push_back({s.id, at});
    }
  }
  return out;
}

// --- PoissonGenerator -------------------------------------------------------

PoissonGenerator::PoissonGenerator(double ratePerSensor, std::uint64_t seed)
    : rate_(ratePerSensor), rng_(seed) {
  WMSN_REQUIRE_MSG(ratePerSensor > 0.0, "poisson rate must be positive");
}

std::vector<Arrival> PoissonGenerator::arrivalsInWindow(
    std::uint32_t /*round*/, sim::Time windowStart, sim::Time windowEnd,
    const std::vector<SensorInfo>& sensors) {
  std::vector<Arrival> out;
  for (const SensorInfo& s : sensors) {
    double t = windowStart.seconds() + rng_.exponential(rate_);
    while (t < windowEnd.seconds()) {
      out.push_back({s.id, sim::Time::seconds(t)});
      t += rng_.exponential(rate_);
    }
  }
  return out;
}

// --- BurstGenerator ---------------------------------------------------------

BurstGenerator::BurstGenerator(BurstParams params, double fieldWidth,
                               double fieldHeight, std::uint64_t seed)
    : params_(params), width_(fieldWidth), height_(fieldHeight), rng_(seed) {
  WMSN_REQUIRE_MSG(params_.frontSpeed > 0.0, "burst frontSpeed");
  WMSN_REQUIRE_MSG(params_.radius > 0.0, "burst radius");
  WMSN_REQUIRE_MSG(params_.reportInterval > 0.0, "burst reportInterval");
  WMSN_REQUIRE_MSG(params_.backgroundRate >= 0.0, "burst backgroundRate");
}

std::vector<Arrival> BurstGenerator::arrivalsInWindow(
    std::uint32_t /*round*/, sim::Time windowStart, sim::Time windowEnd,
    const std::vector<SensorInfo>& sensors) {
  const double window = (windowEnd - windowStart).seconds();

  // The epicenter enters from a random edge and heads for a random point on
  // the opposite edge — a fire line / vehicle column crossing the field.
  const int edge = static_cast<int>(rng_.index(4));
  net::Point start, target;
  // wmsn:fixed-draws — every case draws exactly two uniforms, so the
  // stream advances identically whichever edge the front enters from.
  switch (edge) {
    case 0:  // west -> east
      start = {0.0, rng_.uniform(0.0, height_)};
      target = {width_, rng_.uniform(0.0, height_)};
      break;
    case 1:  // east -> west
      start = {width_, rng_.uniform(0.0, height_)};
      target = {0.0, rng_.uniform(0.0, height_)};
      break;
    case 2:  // south -> north
      start = {rng_.uniform(0.0, width_), 0.0};
      target = {rng_.uniform(0.0, width_), height_};
      break;
    default:  // north -> south
      start = {rng_.uniform(0.0, width_), height_};
      target = {rng_.uniform(0.0, width_), 0.0};
      break;
  }
  const double pathLen = net::distance(start, target);
  const double vx = (target.x - start.x) / pathLen * params_.frontSpeed;
  const double vy = (target.y - start.y) / pathLen * params_.frontSpeed;

  std::vector<Arrival> out;
  for (const SensorInfo& s : sensors) {
    // Solve |p - (start + v t)| <= radius for t in [0, window]: the time
    // span the front covers this sensor.
    const double dx = start.x - s.position.x;
    const double dy = start.y - s.position.y;
    const double a = vx * vx + vy * vy;
    const double b = 2.0 * (dx * vx + dy * vy);
    const double c =
        dx * dx + dy * dy - params_.radius * params_.radius;
    const double disc = b * b - 4.0 * a * c;
    // wmsn:fixed-draws — coverage geometry is a pure function of the
    // (deterministic) front line and sensor positions.
    if (disc >= 0.0) {
      const double sq = std::sqrt(disc);
      const double tIn = std::max(0.0, (-b - sq) / (2.0 * a));
      const double tOut = std::min(window, (-b + sq) / (2.0 * a));
      double t = tIn + rng_.uniform(0.0, params_.reportJitter);
      while (t <= tOut) {
        out.push_back({s.id, windowStart + sim::Time::seconds(t)});
        t += params_.reportInterval +
             rng_.uniform(0.0, params_.reportJitter);
      }
    }
    // Background sensing keeps the rest of the field ticking.
    // wmsn:fixed-draws — gated on a config constant only.
    if (params_.backgroundRate > 0.0) {
      double t = rng_.exponential(params_.backgroundRate);
      while (t < window) {
        out.push_back({s.id, windowStart + sim::Time::seconds(t)});
        t += rng_.exponential(params_.backgroundRate);
      }
    }
  }
  return out;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<TrafficGenerator> makeGenerator(const WorkloadConfig& config,
                                                double fieldWidth,
                                                double fieldHeight,
                                                std::uint64_t seed) {
  switch (config.kind) {
    case WorkloadKind::kLegacyRounds:
      return nullptr;
    case WorkloadKind::kPeriodic:
      return std::make_unique<PeriodicGenerator>(config.ratePerSensor, seed,
                                                 config.cbrJitter);
    case WorkloadKind::kPoisson:
      return std::make_unique<PoissonGenerator>(config.ratePerSensor, seed);
    case WorkloadKind::kBurst:
      return std::make_unique<BurstGenerator>(config.burst, fieldWidth,
                                              fieldHeight, seed);
  }
  return nullptr;
}

}  // namespace wmsn::workload
