#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/geometry.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/random.hpp"

namespace wmsn::workload {

/// Which traffic process drives the sensors' application layer.
enum class WorkloadKind : std::uint8_t {
  /// The original round model: T uniformly-jittered packets per sensor per
  /// round (eq. 3), plus the optional §4.2 hotspot. Kept as the default so
  /// every seed experiment reproduces bit-for-bit.
  kLegacyRounds,
  kPeriodic,  ///< CBR: fixed per-sensor interval with a stable phase offset
  kPoisson,   ///< memoryless per-sensor arrivals at a configurable rate
  kBurst,     ///< an event front sweeps the field; swept sensors report fast
};

std::string toString(WorkloadKind kind);

/// §4.1's event-driven monitoring applications ("a forest fire occurs"): a
/// moving epicenter crosses the field once per round, and sensors inside its
/// radius emit correlated reports while swept. A light background process
/// keeps the rest of the field ticking.
struct BurstParams {
  double frontSpeed = 10.0;      ///< epicenter sweep speed, m/s
  double radius = 50.0;          ///< sensors within this of the front report
  double reportInterval = 0.5;   ///< seconds between reports while swept
  double backgroundRate = 0.02;  ///< background Poisson rate, pkt/s/sensor
  double reportJitter = 0.05;    ///< uniform de-sync added per report, s
};

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kLegacyRounds;
  /// Offered load per sensor in packets/second (periodic & Poisson kinds).
  /// Network offered load = ratePerSensor * sensorCount.
  double ratePerSensor = 0.1;
  /// Per-beat timing slop for the periodic generator, seconds. Models
  /// sensor-OS scheduling drift; without it, hidden-terminal pairs whose
  /// phases land within one airtime of each other collide on every beat.
  double cbrJitter = 0.02;
  BurstParams burst;
};

/// One sensor as the generator sees it: identity plus field position (the
/// burst generator needs geometry; the others ignore it).
struct SensorInfo {
  net::NodeId id = net::kNoNode;
  net::Point position;
};

/// One application-layer send: `sensor` originates a reading at absolute
/// simulation time `at`.
struct Arrival {
  net::NodeId sensor = net::kNoNode;
  sim::Time at;

  friend bool operator==(const Arrival&, const Arrival&) = default;
};

/// A pluggable traffic process. The experiment asks it once per round for
/// the arrivals falling inside that round's traffic window and schedules
/// them on the simulator. Generators own their RNG stream, so arrival
/// patterns depend only on (seed, round, sensor set) — never on thread
/// count or what the protocols did with earlier packets.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  virtual std::string name() const = 0;

  /// Arrivals in [windowStart, windowEnd) for `round`. Deterministic given
  /// the construction seed and identical call sequences.
  virtual std::vector<Arrival> arrivalsInWindow(
      std::uint32_t round, sim::Time windowStart, sim::Time windowEnd,
      const std::vector<SensorInfo>& sensors) = 0;
};

/// Constant-bit-rate reporting: each sensor sends every 1/rate seconds with
/// a per-sensor phase offset derived from (seed, sensor id), so the fleet
/// does not fire in lockstep but each sensor's cadence is exact.
class PeriodicGenerator final : public TrafficGenerator {
 public:
  /// `jitterSeconds` adds an independent hash-derived offset in [0, jitter)
  /// to every beat (0 = exact cadence). Hash-based rather than drawn from a
  /// stream so arrival times do not depend on how rounds slice the
  /// timeline.
  PeriodicGenerator(double ratePerSensor, std::uint64_t seed,
                    double jitterSeconds = 0.0);

  std::string name() const override { return "periodic"; }
  std::vector<Arrival> arrivalsInWindow(
      std::uint32_t round, sim::Time windowStart, sim::Time windowEnd,
      const std::vector<SensorInfo>& sensors) override;

 private:
  sim::Time interval_;
  std::uint64_t seed_;
  sim::Time jitter_;
};

/// Independent per-sensor Poisson processes: exponential inter-arrival
/// times at `ratePerSensor`. Memorylessness lets each window be generated
/// fresh without carrying state across rounds.
class PoissonGenerator final : public TrafficGenerator {
 public:
  PoissonGenerator(double ratePerSensor, std::uint64_t seed);

  std::string name() const override { return "poisson"; }
  std::vector<Arrival> arrivalsInWindow(
      std::uint32_t round, sim::Time windowStart, sim::Time windowEnd,
      const std::vector<SensorInfo>& sensors) override;

 private:
  double rate_;
  Rng rng_;
};

/// Event-front generator (see BurstParams). Each round an epicenter enters
/// from a random field edge and sweeps across at `frontSpeed`; a sensor
/// inside `radius` of the moving center reports every `reportInterval`
/// (plus jitter) for as long as the front covers it.
class BurstGenerator final : public TrafficGenerator {
 public:
  BurstGenerator(BurstParams params, double fieldWidth, double fieldHeight,
                 std::uint64_t seed);

  std::string name() const override { return "burst"; }
  std::vector<Arrival> arrivalsInWindow(
      std::uint32_t round, sim::Time windowStart, sim::Time windowEnd,
      const std::vector<SensorInfo>& sensors) override;

 private:
  BurstParams params_;
  double width_;
  double height_;
  Rng rng_;
};

/// Builds the configured generator, or nullptr for kLegacyRounds (the
/// experiment keeps its original scheduling path for that one, preserving
/// seed-exact reproduction). Field dimensions feed the burst geometry.
std::unique_ptr<TrafficGenerator> makeGenerator(const WorkloadConfig& config,
                                                double fieldWidth,
                                                double fieldHeight,
                                                std::uint64_t seed);

}  // namespace wmsn::workload
