#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/builder.hpp"
#include "core/metrics.hpp"
#include "core/observability.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "obs/mux.hpp"

namespace wmsn::core {

/// What fault injection did to a run, and how the network coped. All zeros
/// (and empty vectors) when the scenario's FaultPlan is empty.
struct FaultSummary {
  std::uint64_t sensorCrashes = 0;
  std::uint64_t sensorRecoveries = 0;
  std::uint64_t gatewayFailures = 0;
  std::uint64_t gatewayRecoveries = 0;
  std::uint64_t linkFaultDrops = 0;  ///< frames lost to Gilbert–Elliott
  std::size_t failedSensorsAtEnd = 0;
  std::size_t failedGatewaysAtEnd = 0;

  // Service-level recovery (fault::RecoveryTracker).
  std::size_t outageEpisodes = 0;
  std::size_t unrecoveredOutages = 0;
  double meanRecoveryLatencyS = 0.0;
  double pdrDuringOutage = 1.0;
  std::vector<double> recoveryLatenciesS;
};

/// Everything a bench or test wants to know after a run.
struct RunResult {
  std::string protocol;
  std::string workload;  ///< traffic-generator name ("legacy-rounds", …)
  std::uint32_t roundsCompleted = 0;

  // Lifetime (§5.3: time until the first sensor drains its energy).
  bool firstDeathObserved = false;
  std::uint32_t firstDeathRound = 0;
  double firstDeathSeconds = 0.0;
  std::size_t aliveSensors = 0;

  // Traffic.
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  double deliveryRatio = 0.0;
  double meanHops = 0.0;
  double meanLatencyMs = 0.0;
  double p95LatencyMs = 0.0;
  std::uint64_t controlFrames = 0;
  std::uint64_t dataFrames = 0;
  std::uint64_t controlBytes = 0;
  std::uint64_t dataBytes = 0;
  std::uint64_t collisions = 0;
  std::uint64_t duplicateDeliveries = 0;
  std::map<net::NodeId, std::uint64_t> perGatewayDeliveries;

  // Congestion (workload engine: finite MAC queues, offered-load runs).
  std::uint64_t macDrops = 0;        ///< CSMA channel-access give-ups
  std::uint64_t queueDrops = 0;      ///< finite-transmit-queue overflows
  std::size_t peakQueueDepth = 0;    ///< deepest queue seen on any node
  double meanQueueDepth = 0.0;       ///< time-weighted mean over all nodes
  double offeredPps = 0.0;           ///< generated readings / sim second
  double goodputPps = 0.0;           ///< delivered readings / sim second

  // Energy.
  EnergySummary sensorEnergy;
  EnergySummary gatewayEnergy;

  // SecMLR security counters (summed over all nodes).
  std::uint64_t rejectedMacs = 0;
  std::uint64_t rejectedReplays = 0;
  std::uint64_t rejectedTesla = 0;
  attacks::AttackerStats attackerStats;

  // Fault injection & recovery (all-zero when the fault plan is empty).
  FaultSummary faults;

  std::uint64_t eventsProcessed = 0;

  /// Present when the run had any ScenarioConfig::obs option on: metrics
  /// registry, per-round time series, and/or the phase profiler.
  std::shared_ptr<const RunObservations> observations;
};

/// Drives a built scenario through its rounds: applies scheduled gateway
/// failures, repositions/announces moving gateways (§5.1 round model),
/// schedules the application traffic (T packets per sensor per round,
/// eq. 3), and runs the simulator to each round boundary.
class Experiment {
 public:
  explicit Experiment(Scenario& scenario);

  /// Per-round hooks, called after each round completes (with the 0-based
  /// round index). Benches use them to snapshot evolving state (Table 1's
  /// per-round routing tables). Multiple named consumers coexist through
  /// the observer mux; attaching the same name twice REQUIRE-fails.
  using RoundObserver = std::function<void(std::uint32_t round)>;
  void addRoundObserver(const std::string& name, RoundObserver observer) {
    // The documented wrapper entry point: it forwards the consumer's own
    // literal name. wmsn-lint: allow(observer-contract)
    roundObservers_.attach(name, std::move(observer));
  }
  /// Legacy single-observer convenience; equivalent to attaching under a
  /// fixed name, so calling it twice REQUIRE-fails instead of silently
  /// replacing the first observer.
  void setRoundObserver(RoundObserver observer) {
    roundObservers_.attach("user-round-observer", std::move(observer));
  }

  RunResult run();

 private:
  void beginRound(std::uint32_t round);
  void applyFaults(std::uint32_t round);
  void scheduleTraffic(std::uint32_t round, sim::Time roundStart);
  RunResult collect(std::uint32_t roundsCompleted);

  Scenario& scenario_;
  Rng trafficRng_;
  std::unique_ptr<workload::TrafficGenerator> generator_;
  obs::ObserverMux<std::uint32_t> roundObservers_;
  std::shared_ptr<RunObservations> observations_;

  // Fault injection (only allocated when the config's FaultPlan is active).
  std::unique_ptr<fault::FaultInjector> faultInjector_;
  std::unique_ptr<fault::RecoveryTracker> recoveryTracker_;
  std::size_t newFailuresThisRound_ = 0;
  std::uint64_t faultPrevGenerated_ = 0;
  std::uint64_t faultPrevDelivered_ = 0;
};

/// Convenience: build + run in one call (what parallel sweeps execute).
RunResult runScenario(const ScenarioConfig& config);

}  // namespace wmsn::core
