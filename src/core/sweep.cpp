#include "core/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/random.hpp"

namespace wmsn::core {

std::vector<RunResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned threads) {
  std::vector<RunResult> results(configs.size());
  if (configs.empty()) return results;

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(configs.size()));

  std::atomic<std::size_t> nextIndex{0};
  std::atomic<bool> failed{false};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = nextIndex.fetch_add(1);
      if (i >= configs.size()) return;
      try {
        results[i] = runScenario(configs[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (firstError) std::rethrow_exception(firstError);
  return results;
}

std::vector<ScenarioConfig> expandSeeds(const ScenarioConfig& base,
                                        std::size_t count) {
  std::vector<ScenarioConfig> configs;
  configs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    configs.push_back(base);
    configs.back().seed = replicaSeed(base.seed, k);
  }
  return configs;
}

}  // namespace wmsn::core
