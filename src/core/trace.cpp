#include "core/trace.hpp"

#include <cstdint>

#include "net/packet.hpp"
#include "util/require.hpp"

namespace wmsn::core {

TraceLogger::TraceLogger(obs::TraceFormat format)
    : sink_(obs::makeTraceSink(format)),
      observerName_("trace-logger@" + std::to_string(reinterpret_cast<
                                                     std::uintptr_t>(this))) {}

TraceLogger::~TraceLogger() { detach(); }

void TraceLogger::attach(Scenario& scenario) {
  net::SensorNetwork* network = scenario.network.get();
  sim::Simulator* simulator = &scenario.simulator;
  obs::TraceSink* sink = sink_.get();
  // A second attach of this logger reuses its name, so the mux rejects it.
  network->attachFrameObserver(
      observerName_, [sink, simulator](const net::Packet& packet,
                                       net::NodeId node, bool transmit) {
        obs::TraceEvent e;
        e.timeSeconds = simulator->now().seconds();
        e.transmit = transmit;
        e.kind = net::kindName(packet.kind);
        e.node = node;
        e.broadcast = packet.hopDst == net::kBroadcastId;
        e.hopDst = packet.hopDst;
        e.origin = packet.origin;
        e.uid = packet.uid;
        e.bytes = packet.sizeBytes();
        // The frame-trace sink mux is the one sanctioned direct feed — it
        // IS the sink layer, not a hot-path caller.
        sink->onEvent(e);  // wmsn-lint: allow(trace-discipline)
      });
  attachedTo_ = network;
}

void TraceLogger::detach() {
  if (!attachedTo_) return;
  attachedTo_->detachFrameObserver(observerName_);
  attachedTo_ = nullptr;
}

const CsvWriter& TraceLogger::csv() const {
  const auto* csvSink = dynamic_cast<const obs::CsvTraceSink*>(sink_.get());
  WMSN_REQUIRE_MSG(csvSink != nullptr,
                   "TraceLogger::csv() needs a csv-format logger");
  return csvSink->csv();
}

}  // namespace wmsn::core
