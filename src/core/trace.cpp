#include "core/trace.hpp"

#include "util/table.hpp"

namespace wmsn::core {

TraceLogger::TraceLogger()
    : csv_({"time_s", "event", "kind", "node", "hop_dst", "origin", "uid",
            "bytes"}) {}

void TraceLogger::attach(Scenario& scenario) {
  net::SensorNetwork* network = scenario.network.get();
  sim::Simulator* simulator = &scenario.simulator;
  network->setFrameObserver([this, simulator](const net::Packet& packet,
                                              net::NodeId node,
                                              bool transmit) {
    csv_.addRow({TextTable::num(simulator->now().seconds(), 6),
                 transmit ? "tx" : "rx", net::toString(packet.kind),
                 TextTable::num(static_cast<std::uint64_t>(node)),
                 packet.hopDst == net::kBroadcastId
                     ? "*"
                     : TextTable::num(
                           static_cast<std::uint64_t>(packet.hopDst)),
                 TextTable::num(static_cast<std::uint64_t>(packet.origin)),
                 TextTable::num(packet.uid),
                 TextTable::num(packet.sizeBytes())});
  });
}

}  // namespace wmsn::core
