#pragma once

/// Umbrella header — the library's public API in one include.
///
/// Quick tour:
///   core::ScenarioConfig cfg;            // describe the network
///   cfg.protocol = core::ProtocolKind::kMlr;
///   auto scenario = core::buildScenario(cfg);
///   core::Experiment exp(*scenario);
///   core::RunResult result = exp.run();  // PDR, hops, energy, lifetime, …
///
/// Lower layers are directly usable too: sim::Simulator (discrete events),
/// net::SensorNetwork (radio/energy substrate), routing::* (the protocols),
/// crypto::* (SHA-256 / HMAC / Speck / TESLA), mesh::* (the backhaul tier),
/// attacks::* (adversary models), obs::* (metrics / time series / traces /
/// profiler — opt in via ScenarioConfig::obs).

#include "core/builder.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/observability.hpp"
#include "core/placement.hpp"
#include "core/topology_control.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "core/trace.hpp"
#include "core/viz.hpp"
#include "mesh/wmsn_stack.hpp"
#include "obs/metrics.hpp"
#include "obs/mux.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_sink.hpp"
#include "workload/workload.hpp"
