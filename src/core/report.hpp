#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace wmsn::core {

/// One-line human summary of a run ("protocol pdr=0.98 hops=3.1 …").
std::string summaryLine(const RunResult& result);

/// The standard comparison table the experiment binaries print: one row per
/// run, labelled by `labels[i]` (falls back to the protocol name).
TextTable comparisonTable(const std::vector<RunResult>& results,
                          const std::vector<std::string>& labels = {});

/// Per-gateway delivery share — the load-balance view (§4.3).
TextTable gatewayLoadTable(const RunResult& result);

/// Congestion view of one or more runs: offered load vs goodput, queue
/// drops and queue depths (the workload engine's capacity metrics).
TextTable congestionTable(const std::vector<RunResult>& results,
                          const std::vector<std::string>& labels = {});

/// Prints a titled table to `os` with a blank line after it.
void printSection(std::ostream& os, const std::string& title,
                  const TextTable& table);

}  // namespace wmsn::core
