#pragma once

#include <string>

#include "core/builder.hpp"
#include "util/csv.hpp"

namespace wmsn::core {

/// Per-frame event trace (ns-2 style): one CSV row per transmit and per
/// successful delivery, with simulated time, packet kind, addressing, and
/// size. Attach before running; write after. Traces are the debugging and
/// post-hoc-analysis companion to the aggregate metrics.
class TraceLogger {
 public:
  TraceLogger();

  /// Hooks the scenario's sensor network. Replaces any existing frame
  /// observer on it.
  void attach(Scenario& scenario);

  std::size_t rows() const { return csv_.rows(); }
  const CsvWriter& csv() const { return csv_; }
  void writeFile(const std::string& path) const { csv_.writeFile(path); }

 private:
  CsvWriter csv_;
};

}  // namespace wmsn::core
