#pragma once

#include <memory>
#include <string>

#include "core/builder.hpp"
#include "obs/trace_sink.hpp"
#include "util/csv.hpp"

namespace wmsn::core {

/// Per-frame event trace (ns-2 style): one record per transmit and per
/// successful delivery, with simulated time, packet kind, addressing, and
/// size. The serialisation lives in a pluggable obs::TraceSink (CSV, JSONL,
/// or a counting null sink); the logger's job is translating network frames
/// into obs::TraceEvents and riding the frame-observer mux, where it coexists
/// with visualisation and workload hooks. Attach before running; write after.
/// A logger must not outlive the scenario it is attached to.
class TraceLogger {
 public:
  explicit TraceLogger(obs::TraceFormat format = obs::TraceFormat::kCsv);
  ~TraceLogger();

  TraceLogger(const TraceLogger&) = delete;
  TraceLogger& operator=(const TraceLogger&) = delete;

  /// Hooks the scenario's sensor network through the observer mux. Other
  /// observers keep working; attaching the *same* logger twice REQUIRE-fails.
  void attach(Scenario& scenario);
  /// Undoes attach() (no-op if not attached). Also runs at destruction.
  void detach();

  obs::TraceFormat format() const { return sink_->format(); }
  const obs::TraceSink& sink() const { return *sink_; }

  std::size_t rows() const { return sink_->events(); }
  /// The serialised trace ("" for the null sink).
  std::string str() const { return sink_->str(); }
  /// CSV view; REQUIRE-fails unless the logger was built with kCsv.
  const CsvWriter& csv() const;
  void writeFile(const std::string& path) const { sink_->writeFile(path); }

 private:
  std::unique_ptr<obs::TraceSink> sink_;
  net::SensorNetwork* attachedTo_ = nullptr;
  std::string observerName_;
};

}  // namespace wmsn::core
