#pragma once

#include <cstdint>
#include <vector>

#include "net/geometry.hpp"

namespace wmsn::core {

/// §4.1's two deployment-model questions, answered computationally:
///
///  * "how many gateways should be deployed" — estimateGatewayCount finds
///    the K_max-style knee: the smallest m beyond which adding a gateway no
///    longer shrinks the total hop cost meaningfully (the paper cites
///    [34]'s result that k > K_max stops improving lifetime);
///  * "where the gateways should be deployed" — planGatewayPlaces picks m
///    of the |P| feasible places greedily so the sum of min-hop distances
///    over all sensors is minimised ("minimizing the total energy
///    consumption of the sensor network"). Greedy selection on this
///    monotone objective is the classic k-median heuristic.

/// Hop distance from every sensor to a prospective gateway at `place`,
/// computed by BFS over the sensor-only connectivity graph (gateways are
/// sinks, not relays). Unreachable sensors get kUnreachableHops.
inline constexpr std::uint32_t kUnreachableHops = 0xffffffffu;
std::vector<std::uint32_t> hopField(const std::vector<net::Point>& sensors,
                                    const net::Point& place,
                                    double radioRange);

/// Greedily selects `m` place ordinals minimising Σ_sensors min-hop to the
/// chosen set. Requires m <= places.size().
std::vector<std::size_t> planGatewayPlaces(
    const std::vector<net::Point>& sensors,
    const std::vector<net::Point>& places, std::size_t m, double radioRange);

/// Total hop cost Σ_sensors min-hop for a given selection (the objective
/// the planner minimises); kUnreachableHops-capped terms count as a large
/// penalty so disconnected selections always lose.
double totalHopCost(const std::vector<net::Point>& sensors,
                    const std::vector<net::Point>& places,
                    const std::vector<std::size_t>& selection,
                    double radioRange);

/// K_max estimate: the smallest m where adding one more gateway improves
/// the greedy total hop cost by less than `kneeFraction` (relative).
std::size_t estimateGatewayCount(const std::vector<net::Point>& sensors,
                                 const std::vector<net::Point>& places,
                                 double radioRange,
                                 double kneeFraction = 0.08);

}  // namespace wmsn::core
