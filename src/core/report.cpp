#include "core/report.hpp"

#include <ostream>
#include <sstream>

namespace wmsn::core {

std::string summaryLine(const RunResult& r) {
  std::ostringstream os;
  os << r.protocol << ": pdr=" << TextTable::num(r.deliveryRatio, 3)
     << " hops=" << TextTable::num(r.meanHops, 2)
     << " latency=" << TextTable::num(r.meanLatencyMs, 1) << "ms"
     << " energy=" << TextTable::num(r.sensorEnergy.totalJ * 1e3, 2) << "mJ"
     << " D2=" << TextTable::num(r.sensorEnergy.varianceD2 * 1e6, 3);
  if (r.firstDeathObserved)
    os << " firstDeathRound=" << r.firstDeathRound;
  return os.str();
}

TextTable comparisonTable(const std::vector<RunResult>& results,
                          const std::vector<std::string>& labels) {
  TextTable table({"run", "PDR", "mean hops", "latency ms", "ctrl frames",
                   "data frames", "energy mJ", "D2 (uJ^2)", "Jain",
                   "lifetime (rounds)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const std::string label =
        i < labels.size() ? labels[i] : r.protocol;
    table.addRow({label, TextTable::num(r.deliveryRatio, 3),
                  TextTable::num(r.meanHops, 2),
                  TextTable::num(r.meanLatencyMs, 1),
                  TextTable::num(r.controlFrames),
                  TextTable::num(r.dataFrames),
                  TextTable::num(r.sensorEnergy.totalJ * 1e3, 2),
                  TextTable::num(r.sensorEnergy.varianceD2 * 1e6, 3),
                  TextTable::num(r.sensorEnergy.jainFairness, 3),
                  r.firstDeathObserved
                      ? TextTable::num(r.firstDeathRound)
                      : ">" + TextTable::num(r.roundsCompleted)});
  }
  return table;
}

TextTable congestionTable(const std::vector<RunResult>& results,
                          const std::vector<std::string>& labels) {
  TextTable table({"run", "workload", "offered pps", "goodput pps", "PDR",
                   "queue drops", "mac drops", "peak queue", "mean queue"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const std::string label = i < labels.size() ? labels[i] : r.protocol;
    table.addRow({label, r.workload, TextTable::num(r.offeredPps, 2),
                  TextTable::num(r.goodputPps, 2),
                  TextTable::num(r.deliveryRatio, 3),
                  TextTable::num(r.queueDrops), TextTable::num(r.macDrops),
                  TextTable::num(static_cast<std::uint64_t>(r.peakQueueDepth)),
                  TextTable::num(r.meanQueueDepth, 3)});
  }
  return table;
}

TextTable gatewayLoadTable(const RunResult& result) {
  TextTable table({"gateway", "deliveries", "share %"});
  const double total = static_cast<double>(result.delivered);
  for (const auto& [gw, count] : result.perGatewayDeliveries) {
    table.addRow({TextTable::num(static_cast<std::uint64_t>(gw)),
                  TextTable::num(count),
                  TextTable::num(total > 0
                                     ? 100.0 * static_cast<double>(count) /
                                           total
                                     : 0.0,
                                 1)});
  }
  return table;
}

void printSection(std::ostream& os, const std::string& title,
                  const TextTable& table) {
  os << "== " << title << " ==\n" << table.str() << "\n";
}

}  // namespace wmsn::core
