#pragma once

#include <cstdint>
#include <vector>

#include "net/sensor_network.hpp"

namespace wmsn::core {

/// §4.4 topology control via GAF-style sleep scheduling ("sleep scheduling
/// controls sensors between work and sleep states, i.e., schedules sensor
/// nodes to work in turn").
///
/// The area is divided into virtual grid cells of side r/√5 — small enough
/// that ANY node in a cell can talk to ANY node in the four adjacent cells,
/// so one awake node per cell preserves the routing topology. Within each
/// cell the node with the most remaining energy stays awake; the rest turn
/// their radios off until the next epoch, rotating the relay duty.
struct SleepParams {
  bool enabled = false;
  /// Recompute the awake set (and rebuild routes) every this many rounds.
  std::uint32_t epochRounds = 2;
};

/// Result of one scheduling pass: which sensors sleep and which awake cell
/// leader each of them delegates its readings to.
struct SleepAssignment {
  std::size_t sleeping = 0;
  /// (sleeper, its cell leader) — leaders route on the sleepers' behalf.
  std::vector<std::pair<net::NodeId, net::NodeId>> delegations;
};

/// One scheduling pass: assigns sleeping/awake states to all SENSORS
/// (gateways always stay awake).
SleepAssignment applySleepSchedule(net::SensorNetwork& network,
                                   double radioRange);

/// Fraction of alive sensors currently asleep.
double sleepingFraction(const net::SensorNetwork& network);

}  // namespace wmsn::core
