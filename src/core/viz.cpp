#include "core/viz.hpp"

#include <algorithm>

namespace wmsn::core {

SvgWriter renderTopology(const Scenario& scenario, VizOptions options) {
  const net::SensorNetwork& network = *scenario.network;
  SvgWriter svg(scenario.config.width, scenario.config.height);

  // Radio links first (underneath everything else). Served by the spatial
  // grid via neighborsOf; each undirected sensor-sensor edge is drawn once,
  // from its lower-id endpoint.
  if (options.drawLinks) {
    for (const net::NodeId s : network.sensorIds()) {
      const net::Node& a = network.node(s);
      if (!a.alive()) continue;
      for (const net::NodeId nbr : network.neighborsOf(s)) {
        if (nbr <= s || network.node(nbr).isGateway()) continue;
        const net::Node& b = network.node(nbr);
        svg.line(a.position().x, a.position().y, b.position().x,
                 b.position().y, "#cccccc", 0.4, 0.6);
      }
    }
  }

  if (options.drawPlaces) {
    for (std::size_t p = 0; p < scenario.feasiblePlaces.size(); ++p) {
      const net::Point& place = scenario.feasiblePlaces[p];
      svg.cross(place.x, place.y, 4.0, "#7a5195", 1.2);
      svg.text(place.x + 5, place.y - 5, "P" + std::to_string(p), 8.0,
               "#7a5195");
    }
  }

  // Hottest sensor sets the heat scale.
  double maxEnergy = 0.0;
  for (net::NodeId s : network.sensorIds())
    maxEnergy = std::max(maxEnergy, network.node(s).battery().consumedJ());

  for (net::NodeId s : network.sensorIds()) {
    const net::Node& node = network.node(s);
    const net::Point& pos = node.position();
    if (!node.alive()) {
      svg.circle(pos.x, pos.y, options.nodeRadius, "none", "#999999", 0.8);
      continue;
    }
    std::string fill = "#4477aa";
    if (options.energyHeat && maxEnergy > 0.0)
      fill = SvgWriter::heatColor(node.battery().consumedJ() / maxEnergy);
    svg.circle(pos.x, pos.y, options.nodeRadius, fill, "none", 0.0,
               node.sleeping() ? 0.3 : 1.0);
  }

  for (net::NodeId g : network.gatewayIds()) {
    const net::Node& node = network.node(g);
    const net::Point& pos = node.position();
    const double half = options.nodeRadius * 1.8;
    svg.rect(pos.x - half, pos.y - half, 2 * half, 2 * half,
             node.alive() ? "#222222" : "#bbbbbb", "#ffffff", 0.8);
    svg.text(pos.x + half + 2, pos.y + 3, "G" + std::to_string(g), 9.0);
  }

  if (options.drawLegend) {
    const double y = scenario.config.height + 12;
    svg.text(0, y,
             "sensors: heat = consumed energy (green cold, red hottest); "
             "hollow = dead; faded = sleeping. squares = gateways, X = "
             "feasible places",
             8.0, "#555555");
  }
  return svg;
}

void writeTopologySvg(const Scenario& scenario, const std::string& path,
                      VizOptions options) {
  renderTopology(scenario, options).writeFile(path);
}

}  // namespace wmsn::core
