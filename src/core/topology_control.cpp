#include "core/topology_control.hpp"

#include <cmath>
#include <limits>
#include <map>

namespace wmsn::core {

SleepAssignment applySleepSchedule(net::SensorNetwork& network,
                                   double radioRange) {
  // GAF's equivalence condition: cell side r/√5 guarantees that nodes in
  // horizontally/vertically adjacent cells are within r of each other.
  const double cell = radioRange / std::sqrt(5.0);

  struct CellState {
    net::NodeId leader = net::kNoNode;
    double leaderEnergy = -1.0;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, CellState> cells;

  auto cellOf = [cell](const net::Point& p) {
    return std::make_pair(static_cast<std::int64_t>(std::floor(p.x / cell)),
                          static_cast<std::int64_t>(std::floor(p.y / cell)));
  };

  // Pass 1: elect the energy-richest alive sensor per cell.
  for (net::NodeId s : network.sensorIds()) {
    net::Node& node = network.node(s);
    if (!node.alive()) continue;
    const double remaining = node.battery().finite()
                                 ? node.battery().remainingJ()
                                 : std::numeric_limits<double>::max();
    CellState& state = cells[cellOf(node.position())];
    if (remaining > state.leaderEnergy) {
      state.leaderEnergy = remaining;
      state.leader = s;
    }
  }

  // Pass 2: leaders (and gateways, implicitly) awake; everyone else sleeps
  // and delegates its readings to its cell leader (same cell ⇒ within
  // r·√(2/5) < r, so the handoff link always exists).
  SleepAssignment assignment;
  for (net::NodeId s : network.sensorIds()) {
    net::Node& node = network.node(s);
    if (!node.alive()) continue;
    const net::NodeId leader = cells.at(cellOf(node.position())).leader;
    const bool isLeader = leader == s;
    node.setSleeping(!isLeader);
    if (!isLeader) {
      ++assignment.sleeping;
      assignment.delegations.emplace_back(s, leader);
    }
  }
  return assignment;
}

double sleepingFraction(const net::SensorNetwork& network) {
  std::size_t alive = 0, asleep = 0;
  for (net::NodeId s : network.sensorIds()) {
    const net::Node& node = network.node(s);
    if (!node.alive()) continue;
    ++alive;
    if (node.sleeping()) ++asleep;
  }
  return alive ? static_cast<double>(asleep) / static_cast<double>(alive)
               : 0.0;
}

}  // namespace wmsn::core
