#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace wmsn::core {

/// Runs every scenario and returns results in input order. Scenarios are
/// independent simulations, so they parallelise perfectly across a thread
/// pool — this is where the harness spends its cores. `threads == 0` uses
/// the hardware concurrency. Exceptions from a worker propagate to the
/// caller.
std::vector<RunResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned threads = 0);

/// `count` copies of `base` with seeds replicaSeed(base.seed, 0..count-1) —
/// the one seed-replication expansion wmsn_cli --repeat and the campaign
/// runner share (util/random.hpp documents the derivation contract).
std::vector<ScenarioConfig> expandSeeds(const ScenarioConfig& base,
                                        std::size_t count);

/// Averages a metric extracted from several results (seed replication).
template <typename Fn>
double meanOver(const std::vector<RunResult>& results, Fn metric) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const RunResult& r : results) sum += metric(r);
  return sum / static_cast<double>(results.size());
}

}  // namespace wmsn::core
