#include "core/builder.hpp"

#include "core/placement.hpp"
#include "routing/flooding.hpp"
#include "routing/leach.hpp"
#include "routing/diffusion.hpp"
#include "routing/pegasis.hpp"
#include "routing/spin.hpp"
#include "routing/teen.hpp"
#include "routing/secmlr.hpp"
#include "routing/single_sink.hpp"
#include "routing/spr.hpp"
#include "util/require.hpp"

namespace wmsn::core {

namespace {

std::unique_ptr<net::RadioModel> makeRadio(const ScenarioConfig& config) {
  if (config.lossyRadio)
    return std::make_unique<net::LogDistanceRadio>(config.radioRange * 0.8,
                                                   config.radioRange);
  return std::make_unique<net::UnitDiskRadio>(config.radioRange);
}

routing::ProtocolStack::Factory makeFactory(const ScenarioConfig& config) {
  switch (config.protocol) {
    case ProtocolKind::kFlooding:
      return [params = config.flooding](net::SensorNetwork& n, net::NodeId id,
                                        const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::FloodingRouting>(n, id, k, params);
      };
    case ProtocolKind::kGossip:
      return [params = config.flooding](net::SensorNetwork& n, net::NodeId id,
                                        const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::GossipRouting>(n, id, k, params);
      };
    case ProtocolKind::kSpin:
      return [params = config.spin](net::SensorNetwork& n, net::NodeId id,
                                    const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::SpinRouting>(n, id, k, params);
      };
    case ProtocolKind::kDiffusion:
      return [params = config.diffusion](net::SensorNetwork& n,
                                         net::NodeId id,
                                         const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::DiffusionRouting>(n, id, k, params);
      };
    case ProtocolKind::kLeach:
      return [params = config.leach](net::SensorNetwork& n, net::NodeId id,
                                     const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::LeachRouting>(n, id, k, params);
      };
    case ProtocolKind::kPegasis:
      return [params = config.pegasis](net::SensorNetwork& n, net::NodeId id,
                                       const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::PegasisRouting>(n, id, k, params);
      };
    case ProtocolKind::kTeen:
      return [teen = config.teen, leach = config.leach](
                 net::SensorNetwork& n, net::NodeId id,
                 const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::TeenRouting>(n, id, k, teen, leach);
      };
    case ProtocolKind::kSingleSink:
      return [params = config.singleSink](net::SensorNetwork& n,
                                          net::NodeId id,
                                          const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::SingleSinkRouting>(n, id, k, params);
      };
    case ProtocolKind::kSpr:
      return [params = config.spr](net::SensorNetwork& n, net::NodeId id,
                                   const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::SprRouting>(n, id, k, params);
      };
    case ProtocolKind::kMlr:
      return [params = config.mlr](net::SensorNetwork& n, net::NodeId id,
                                   const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::MlrRouting>(n, id, k, params);
      };
    case ProtocolKind::kSecMlr:
      return [sec = config.secmlr, params = config.mlr](
                 net::SensorNetwork& n, net::NodeId id,
                 const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::SecMlrRouting>(n, id, k, sec, params);
      };
  }
  throw PreconditionError("unknown protocol kind");
}

std::unique_ptr<Scenario> assemble(const ScenarioConfig& config,
                                   std::vector<net::Point> sensorPositions,
                                   std::vector<net::Point> feasiblePlaces,
                                   std::vector<std::size_t> initialPlaces,
                                   std::unique_ptr<net::GatewaySchedule>
                                       schedule) {
  auto scenario = std::make_unique<Scenario>();
  ScenarioConfig cfg = config;

  // SecMLR's TESLA chain must span the whole run.
  if (cfg.protocol == ProtocolKind::kSecMlr) {
    const std::size_t needed =
        static_cast<std::size_t>(
            (static_cast<std::int64_t>(cfg.rounds) + 2) *
            cfg.roundDuration.us / cfg.secmlr.tesla.intervalDuration.us) +
        cfg.secmlr.tesla.disclosureDelay + 8;
    cfg.secmlr.tesla.chainLength =
        std::max(cfg.secmlr.tesla.chainLength, needed);
  }
  scenario->config = cfg;
  scenario->feasiblePlaces = feasiblePlaces;

  net::SensorNetworkParams netParams;
  netParams.energy = cfg.energy;
  netParams.medium = cfg.medium;
  // Gilbert–Elliott link loss rides in via the fault plan; seed the chains
  // from their own constant so the medium's channel stream is untouched.
  netParams.medium.linkLoss = cfg.faults.linkLoss;
  netParams.medium.linkLossSeed = cfg.seed ^ 0xfa117;
  netParams.mac = cfg.mac;
  netParams.queue = cfg.macQueue;
  netParams.gatewaysBatteryLimited = cfg.gatewaysBatteryLimited;
  netParams.seed = cfg.seed ^ 0x5eed;
  netParams.trace.retainSpans = cfg.obs.traceSpans;
  netParams.trace.samplePermille = cfg.obs.traceSamplePermille;
  // The trace stream is keyed by the scenario seed so merged multi-run
  // exports (repeat mode, campaigns) stay distinguishable per run.
  netParams.trace.streamId = cfg.seed;
  // On an ideal contention-free channel forwarding jitter serves no purpose
  // and would only perturb the floods' BFS ordering.
  if (cfg.mac == net::MacKind::kIdeal && !cfg.medium.collisions)
    netParams.floodJitter = sim::Time::zero();

  scenario->network = std::make_unique<net::SensorNetwork>(
      scenario->simulator, makeRadio(cfg), netParams);

  for (const net::Point& p : sensorPositions) scenario->network->addSensor(p);
  routing::NetworkKnowledge knowledge;
  knowledge.feasiblePlaces = feasiblePlaces;
  for (std::size_t g = 0; g < initialPlaces.size(); ++g) {
    WMSN_REQUIRE(initialPlaces[g] < feasiblePlaces.size());
    knowledge.gatewayIds.push_back(
        scenario->network->addGateway(feasiblePlaces[initialPlaces[g]]));
  }

  scenario->stack = std::make_unique<routing::ProtocolStack>(
      *scenario->network, std::move(knowledge), makeFactory(cfg));

  if (schedule) {
    scenario->schedule = std::move(schedule);
  } else if (cfg.gatewaysMove && !cfg.planGatewayPlacement &&
             (cfg.protocol == ProtocolKind::kMlr ||
              cfg.protocol == ProtocolKind::kSecMlr)) {
    scenario->schedule = std::make_unique<net::RotatingRandomSchedule>(
        cfg.gatewayCount, feasiblePlaces.size(), cfg.seed ^ 0x90b17e);
  } else {
    scenario->schedule = std::make_unique<net::StaticSchedule>(
        initialPlaces, feasiblePlaces.size());
  }

  // Install the attack, if configured.
  if (cfg.attack.kind != attacks::AttackKind::kNone) {
    attacks::AttackPlan plan = cfg.attack;
    if (plan.attackers.empty() && cfg.attackerCount > 0) {
      // Deterministically pick spread-out sensors as the captured nodes.
      Rng pick(cfg.seed ^ 0xa77ac);
      std::vector<net::NodeId> candidates =
          scenario->network->sensorIds();
      // wmsn:fixed-draws — `pick` is a branch-local stream derived from
      // the scenario seed; whether the branch runs is fixed by the config.
      pick.shuffle(candidates);
      candidates.resize(std::min(cfg.attackerCount, candidates.size()));
      plan.attackers = candidates;
    }
    const auto victim = cfg.protocol == ProtocolKind::kSecMlr
                            ? attacks::VictimProtocol::kSecMlr
                            : attacks::VictimProtocol::kMlr;
    attacks::installAttack(*scenario->stack, *scenario->network, plan, victim,
                           cfg.mlr, cfg.secmlr);
    scenario->config.attack = plan;  // expose the chosen attacker ids
  }

  return scenario;
}

}  // namespace

std::unique_ptr<Scenario> buildScenario(const ScenarioConfig& config) {
  config.validate();
  Rng rng(config.seed);

  net::DeploymentParams dp;
  dp.sensorCount = config.sensorCount;
  dp.gatewayCount = config.gatewayCount;
  dp.width = config.width;
  dp.height = config.height;
  dp.radioRange = config.radioRange;

  // Retry layouts until the initial gateway placement covers every sensor.
  for (int attempt = 0; attempt < 50; ++attempt) {
    net::Deployment d;
    switch (config.deployment) {
      case DeploymentKind::kUniform:
        d = net::uniformDeployment(dp, rng);
        break;
      case DeploymentKind::kGrid:
        d = net::gridDeployment(dp, rng);
        break;
      case DeploymentKind::kClustered:
        d = net::clusteredDeployment(dp, config.clusterCount, rng);
        break;
    }
    auto places = net::feasiblePlaces(dp, config.feasiblePlaceCount, rng);

    std::vector<std::size_t> initialPlaces;
    if (config.planGatewayPlacement) {
      initialPlaces = planGatewayPlaces(d.sensors, places,
                                        config.gatewayCount,
                                        config.radioRange);
    } else {
      for (std::size_t g = 0; g < config.gatewayCount; ++g)
        initialPlaces.push_back(g);  // matches RotatingRandomSchedule round 0
    }

    // Gateways move between rounds, so the layout must stay routable for
    // ANY placement: the sensor-only graph is one component, and every
    // feasible place is radio-attached to it (a gateway parked at a
    // detached place could never announce itself).
    if (!net::sensorsConnected(d.sensors, config.radioRange)) continue;
    if (!net::placesAttached(places, d.sensors, config.radioRange * 0.9))
      continue;

    return assemble(config, std::move(d.sensors), std::move(places),
                    std::move(initialPlaces), nullptr);
  }
  throw PreconditionError(
      "no connected layout found for this config; increase density or range");
}

std::unique_ptr<Scenario> buildScenarioAt(
    const ScenarioConfig& config, std::vector<net::Point> sensorPositions,
    std::vector<net::Point> feasiblePlaces,
    std::vector<std::size_t> gatewayPlaceOrdinals,
    std::unique_ptr<net::GatewaySchedule> schedule) {
  WMSN_REQUIRE(!gatewayPlaceOrdinals.empty());
  ScenarioConfig cfg = config;
  cfg.sensorCount = sensorPositions.size();
  cfg.gatewayCount = gatewayPlaceOrdinals.size();
  cfg.feasiblePlaceCount = feasiblePlaces.size();
  cfg.validate();
  return assemble(cfg, std::move(sensorPositions), std::move(feasiblePlaces),
                  std::move(gatewayPlaceOrdinals), std::move(schedule));
}

}  // namespace wmsn::core
