#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/adversary.hpp"
#include "core/topology_control.hpp"
#include "fault/plan.hpp"
#include "net/energy.hpp"
#include "net/medium.hpp"
#include "net/sensor_network.hpp"
#include "routing/flooding.hpp"
#include "routing/leach.hpp"
#include "routing/diffusion.hpp"
#include "routing/pegasis.hpp"
#include "routing/spin.hpp"
#include "routing/teen.hpp"
#include "routing/mlr.hpp"
#include "routing/secmlr.hpp"
#include "routing/single_sink.hpp"
#include "routing/spr.hpp"
#include "workload/workload.hpp"

namespace wmsn::core {

enum class ProtocolKind : std::uint8_t {
  kFlooding,
  kGossip,
  kSpin,
  kDiffusion,
  kLeach,
  kPegasis,
  kTeen,
  kSingleSink,
  kSpr,
  kMlr,
  kSecMlr,
};

std::string toString(ProtocolKind kind);

enum class DeploymentKind : std::uint8_t { kUniform, kGrid, kClustered };

std::string toString(DeploymentKind kind);

/// A scheduled gateway failure (ROBUST experiment fault injection).
struct GatewayFailure {
  std::uint32_t round = 0;
  std::size_t gatewayOrdinal = 0;  ///< index into the gateway list
};

/// A localised traffic burst (§4.2's "a forest fire occurs" scenario):
/// sensors within `radius` of a feasible place send extra packets from
/// `startRound` on — the §4.3 load-balance stressor.
struct HotspotConfig {
  bool enabled = false;
  std::size_t placeOrdinal = 0;  ///< burst centre = feasiblePlaces[ordinal]
  double radius = 60.0;
  std::uint32_t extraPacketsPerSensor = 6;
  std::uint32_t startRound = 1;
};

/// What the run records beyond the end-of-run RunResult aggregates. All off
/// by default — observability is opt-in so the hot path stays at seed cost.
/// When any option is on, the run's RunResult carries a RunObservations.
struct ObsOptions {
  /// Fill a MetricsRegistry (counters/gauges/histograms with
  /// protocol/node/kind labels) from TrafficStats, the MAC queues, the
  /// energy model and the routing protocols at end of run.
  bool metrics = false;
  /// Snapshot a RoundSample at every round boundary: PDR, bytes, queue
  /// depths, per-gateway load, energy min/mean/max/D².
  bool timeseries = false;
  /// Wall-clock phase profiler (event dispatch, MAC contention, crypto,
  /// route maintenance). Diagnostic only — its numbers are not
  /// deterministic, unlike everything else a run emits.
  bool profile = false;
  /// Causal packet tracing: retain per-reading lifecycle spans (originate,
  /// enqueue, MAC, per-hop forward/recv, drops with reason, reroutes, first
  /// delivery) for Chrome-trace JSONL export and route diagnosis. Spans are
  /// emitted from simulation state only — no RNG draws, no wall clock — so
  /// enabling tracing never perturbs a run's results.
  bool traceSpans = false;
  /// Deterministic head sampling for retained spans: a reading is kept when
  /// hash(uid) % 1000 < traceSamplePermille. Network-scope events (uid 0)
  /// are always kept. 1000 = trace everything.
  std::uint32_t traceSamplePermille = 1000;
  /// Deterministic work-counter ledger (frames, scans, pairs examined, RNG
  /// draws, ...) plus non-deterministic resource telemetry (peak RSS,
  /// allocations, rounds/sec). Counters derive from simulation state only
  /// and export through a dedicated perf channel — enabling them never
  /// perturbs metrics/timeseries/trace output bytes.
  bool perf = false;

  bool any() const {
    return metrics || timeseries || profile || traceSpans || perf;
  }
};

/// Everything needed to build and run one simulated scenario. Every field
/// has a sane default so examples stay short; benches override what they
/// sweep.
struct ScenarioConfig {
  // --- topology -------------------------------------------------------------
  DeploymentKind deployment = DeploymentKind::kUniform;
  std::size_t sensorCount = 100;
  std::size_t gatewayCount = 3;      ///< m
  std::size_t feasiblePlaceCount = 6;///< |P| (MLR, §5.3)
  std::size_t clusterCount = 4;      ///< for kClustered
  double width = 200.0;
  double height = 200.0;
  double radioRange = 30.0;
  bool lossyRadio = false;           ///< LogDistance fringe instead of disk

  // --- protocol ---------------------------------------------------------------
  ProtocolKind protocol = ProtocolKind::kMlr;
  routing::FloodingParams flooding;
  routing::SpinParams spin;
  routing::DiffusionParams diffusion;
  routing::LeachParams leach;
  routing::PegasisParams pegasis;
  routing::TeenParams teen;
  routing::SingleSinkParams singleSink;
  routing::SprParams spr;
  routing::MlrParams mlr;
  routing::SecMlrConfig secmlr;

  // --- traffic & rounds --------------------------------------------------------
  std::uint32_t rounds = 10;
  sim::Time roundDuration = sim::Time::seconds(20.0);
  std::uint32_t packetsPerSensorPerRound = 1;  ///< T in eq. (3)
  std::size_t readingBytes = 24;
  /// Offset into each round before application traffic starts (discovery
  /// floods and TESLA disclosures need to settle first).
  sim::Time trafficStart = sim::Time::seconds(4.0);
  /// Extra simulated time after the last round so in-flight frames land.
  sim::Time drainGrace = sim::Time::seconds(2.0);

  // --- workload engine ---------------------------------------------------------
  /// Traffic process driving the application layer. The default
  /// (kLegacyRounds) reproduces the original per-round scheduling exactly;
  /// the other kinds (periodic/Poisson/burst) are the offered-load axis of
  /// the capacity experiments.
  workload::WorkloadConfig workload;
  /// Finite per-node MAC transmit queue. capacity 0 (default) keeps the
  /// legacy unbounded behaviour; capacity > 0 enables congestion drops and
  /// queue-depth accounting (CSMA MAC only).
  net::QueueParams macQueue;

  // --- physical layer -----------------------------------------------------------
  net::EnergyParams energy;
  net::MediumParams medium;
  net::MacKind mac = net::MacKind::kCsma;
  bool gatewaysBatteryLimited = false;

  // --- gateway mobility ------------------------------------------------------------
  bool gatewaysMove = true;  ///< rotating-random schedule over |P| places
  /// §4.1 deployment model: choose the initial gateway places with the
  /// greedy hop-cost planner (core/placement.hpp) instead of the first m
  /// feasible places. Implies a static schedule (planned positions stay).
  bool planGatewayPlacement = false;

  // --- traffic shaping & topology control ----------------------------------------------
  HotspotConfig hotspot;
  SleepParams sleep;  ///< §4.4 GAF-style duty cycling

  // --- fault & attack injection ------------------------------------------------------
  std::vector<GatewayFailure> failures;
  /// Fault-injection plan (src/fault): scheduled and seeded-random
  /// crash/recover events plus Gilbert–Elliott link loss. Empty by default;
  /// with an empty plan the run is byte-identical to a build without the
  /// fault subsystem. Random processes derive from `seed`, so replay is
  /// exact at any --threads.
  fault::FaultPlan faults;
  attacks::AttackPlan attack;
  std::size_t attackerCount = 0;  ///< auto-picks sensors if attack.attackers empty

  // --- observability ---------------------------------------------------------------------
  ObsOptions obs;

  // --- run control ---------------------------------------------------------------------
  bool stopAtFirstDeath = false;  ///< lifetime mode: run until a sensor dies
  std::uint64_t seed = 1;

  /// Cross-field sanity checks; throws PreconditionError with a message
  /// naming the offending field.
  void validate() const;
};

}  // namespace wmsn::core
