#pragma once

#include <vector>

#include "net/sensor_network.hpp"

namespace wmsn::core {

/// Per-network energy accounting in the paper's terms: total ΣEᵢ (eq. 2) and
/// the balance variance D² (eq. 1) over sensor nodes.
struct EnergySummary {
  double totalJ = 0.0;       ///< ΣEᵢ over sensors
  double meanJ = 0.0;        ///< E̅
  double varianceD2 = 0.0;   ///< D² = Σ(Eᵢ − E̅)² (the paper's eq. 1)
  double stddevJ = 0.0;
  double minJ = 0.0;
  double maxJ = 0.0;
  double jainFairness = 1.0; ///< 1.0 = perfectly balanced
  double txJ = 0.0;
  double rxJ = 0.0;
  double cpuJ = 0.0;
  std::vector<double> perSensorJ;
};

/// Scans consumed energy of all SENSOR nodes (gateways are excluded, per the
/// paper's unrestricted-gateway assumption).
EnergySummary summarizeSensorEnergy(const net::SensorNetwork& network);

/// Gateway-side consumption (tracked even on infinite batteries) — used by
/// the SECOVH experiment to show SecMLR shifting crypto cost onto gateways.
EnergySummary summarizeGatewayEnergy(const net::SensorNetwork& network);

}  // namespace wmsn::core
