#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "routing/mlr.hpp"
#include "routing/secmlr.hpp"
#include "util/require.hpp"
#include "workload/workload.hpp"

namespace wmsn::core {

Experiment::Experiment(Scenario& scenario)
    : scenario_(scenario),
      trafficRng_(scenario.config.seed ^ 0x7aff1c),
      generator_(workload::makeGenerator(
          scenario.config.workload, scenario.config.width,
          scenario.config.height, scenario.config.seed ^ 0x3a11c0)) {
  const ScenarioConfig& cfg = scenario.config;
  if (cfg.faults.any()) {
    faultInjector_ = std::make_unique<fault::FaultInjector>(
        cfg.faults, scenario.network->sensorIds().size(),
        scenario.network->gatewayIds().size(), cfg.seed ^ 0xfa01);
    // An outage closes when round PDR climbs back to 90% of the pre-fault
    // baseline — service-level recovery, not hardware repair.
    recoveryTracker_ = std::make_unique<fault::RecoveryTracker>(
        0.9, cfg.roundDuration.seconds());
  }
}

void Experiment::applyFaults(std::uint32_t round) {
  Scenario& s = scenario_;
  newFailuresThisRound_ = 0;
  if (!faultInjector_) return;
  for (const fault::FaultEvent& e : faultInjector_->actionsAtRound(round)) {
    const auto& ids = e.target == fault::FaultTargetKind::kSensor
                          ? s.network->sensorIds()
                          : s.network->gatewayIds();
    const net::NodeId id = ids.at(e.ordinal);
    s.network->node(id).setFailed(!e.recover);
    if (e.recover) {
      // A repaired sensor rejoins with amnesia: whatever routes it held
      // before the crash went stale while it was dark.
      if (e.target == fault::FaultTargetKind::kSensor)
        s.stack->at(id).onTopologyChanged();
    } else {
      ++newFailuresThisRound_;
    }
  }
}

void Experiment::beginRound(std::uint32_t round) {
  Scenario& s = scenario_;
  const ScenarioConfig& cfg = s.config;

  // Fault injection happens at the boundary: the plan's crash/recover
  // actions first, then the legacy permanent gateway kills.
  applyFaults(round);
  for (const GatewayFailure& f : cfg.failures) {
    if (f.round != round) continue;
    const net::NodeId gw = s.network->gatewayIds().at(f.gatewayOrdinal);
    s.network->node(gw).kill(s.simulator.now());
    ++newFailuresThisRound_;
  }

  // §4.4 sleep scheduling: at epoch boundaries rotate the awake set and
  // force a full route rebuild over the new relay topology.
  bool sleepEpoch = false;
  if (cfg.sleep.enabled && round % std::max(1u, cfg.sleep.epochRounds) == 0) {
    const SleepAssignment assignment =
        applySleepSchedule(*s.network, cfg.radioRange);
    s.stack->topologyChangedAll();
    // Wire delegation: sleepers hand readings to their cell leader.
    for (net::NodeId sensor : s.network->sensorIds()) {
      if (auto* mlr =
              dynamic_cast<routing::MlrRouting*>(&s.stack->at(sensor)))
        mlr->setUplinkDelegate(std::nullopt);
    }
    for (const auto& [sleeper, leader] : assignment.delegations) {
      if (auto* mlr =
              dynamic_cast<routing::MlrRouting*>(&s.stack->at(sleeper)))
        mlr->setUplinkDelegate(leader);
    }
    sleepEpoch = true;
  }

  s.stack->beginRound(round);

  const bool placeBased = cfg.protocol == ProtocolKind::kMlr ||
                          cfg.protocol == ProtocolKind::kSecMlr;

  // Reposition gateways per the mobility schedule and let moved ones
  // announce (§5.3: "moved gateways notify all sensor nodes ... unmoved
  // gateways do not need to issue such a notification"). Round 0's initial
  // placement is announced by everyone. The rebuild ablation re-announces
  // everything each round.
  std::vector<std::size_t> announcers;
  if (round == 0) {
    for (std::size_t g = 0; g < s.network->gatewayIds().size(); ++g)
      announcers.push_back(g);
  } else {
    announcers = s.schedule->movedGateways(round);
    // Failover mode turns the announcement into a per-round heartbeat: a
    // gateway that falls silent ages out of the sensors' place tables.
    if (placeBased &&
        (cfg.mlr.rebuildEveryRound || sleepEpoch || cfg.mlr.failover)) {
      announcers.clear();
      for (std::size_t g = 0; g < s.network->gatewayIds().size(); ++g)
        announcers.push_back(g);
    }
  }

  for (std::size_t g = 0; g < s.network->gatewayIds().size(); ++g) {
    const net::NodeId gwId = s.network->gatewayIds()[g];
    const std::size_t place = s.schedule->placeOf(g, round);
    s.network->setGatewayPosition(gwId, s.feasiblePlaces.at(place));
  }

  if (placeBased) {
    for (std::size_t g : announcers) {
      const net::NodeId gwId = s.network->gatewayIds()[g];
      if (!s.network->node(gwId).alive()) continue;
      const std::uint16_t newPlace =
          static_cast<std::uint16_t>(s.schedule->placeOf(g, round));
      std::uint16_t prevPlace = routing::kNoPlace;
      if (round > 0) {
        const std::size_t prev = s.schedule->placeOf(g, round - 1);
        if (prev != newPlace)
          prevPlace = static_cast<std::uint16_t>(prev);
      }
      auto* mlr = dynamic_cast<routing::MlrRouting*>(&s.stack->at(gwId));
      WMSN_REQUIRE_MSG(mlr != nullptr,
                       "place-based protocol expected on gateways");
      mlr->announceMove(newPlace, prevPlace, round);
    }
  }
}

void Experiment::scheduleTraffic(std::uint32_t round, sim::Time roundStart) {
  Scenario& s = scenario_;
  const ScenarioConfig& cfg = s.config;

  if (generator_) {
    // Workload-engine path: the generator decides who sends when inside the
    // round's traffic window; the experiment just schedules the originates.
    std::vector<workload::SensorInfo> sensors;
    sensors.reserve(s.network->sensorIds().size());
    for (net::NodeId id : s.network->sensorIds())
      sensors.push_back({id, s.network->node(id).position()});
    // Same guard band as the legacy path's 0.9 factor below: the last slice
    // of the round is reserved for in-flight frames to land before the next
    // boundary's move floods. Without it, CBR tails still forwarding at the
    // boundary collide with the place announcements; sensors that miss the
    // flood black-hole to the vacated place for the whole round.
    const sim::Time windowStart = roundStart + cfg.trafficStart;
    const sim::Time windowEnd =
        windowStart + sim::Time::seconds(
                          (cfg.roundDuration - cfg.trafficStart).seconds() *
                          0.9);
    for (const workload::Arrival& a :
         generator_->arrivalsInWindow(round, windowStart, windowEnd,
                                      sensors)) {
      s.simulator.scheduleAt(
          a.at, [&s, sensor = a.sensor, bytes = cfg.readingBytes] {
            if (!s.network->node(sensor).alive()) return;
            s.stack->at(sensor).originate(Bytes(bytes, 0xab));
          });
    }
    return;
  }

  const double windowSeconds =
      (cfg.roundDuration - cfg.trafficStart).seconds() * 0.9;

  for (net::NodeId sensor : s.network->sensorIds()) {
    std::uint32_t packets = cfg.packetsPerSensorPerRound;
    // §4.2's burst scenario ("a forest fire occurs"): sensors near the
    // hotspot report much more often.
    if (cfg.hotspot.enabled && round >= cfg.hotspot.startRound) {
      const net::Point centre =
          s.feasiblePlaces.at(cfg.hotspot.placeOrdinal);
      if (net::distance(s.network->node(sensor).position(), centre) <=
          cfg.hotspot.radius)
        packets += cfg.hotspot.extraPacketsPerSensor;
    }
    for (std::uint32_t k = 0; k < packets; ++k) {
      const sim::Time at =
          roundStart + cfg.trafficStart +
          sim::Time::seconds(trafficRng_.uniform(0.0, windowSeconds));
      s.simulator.scheduleAt(at, [&s, sensor, bytes = cfg.readingBytes] {
        if (!s.network->node(sensor).alive()) return;
        s.stack->at(sensor).originate(Bytes(bytes, 0xab));
      });
    }
  }
}

RunResult Experiment::run() {
  Scenario& s = scenario_;
  const ScenarioConfig& cfg = s.config;

  if (cfg.obs.any() && !observations_) {
    observations_ = std::make_shared<RunObservations>();
    if (cfg.obs.timeseries) {
      observations_->timeseries = obs::TimeSeriesRecorder(
          s.network->gatewayIds().size(),
          obs::TimeSeriesRecorder::defaultDepthEdges(), cfg.faults.any());
      // Round sampling rides the same mux as user observers; the cursor is
      // owned by the lambda and lives as long as the experiment.
      auto cursor =
          std::make_shared<RoundCursor>(s.network->gatewayIds().size());
      roundObservers_.attach(
          "obs-timeseries", [this, cursor](std::uint32_t round) {
            observations_->timeseries.add(cursor->sample(
                scenario_, round,
                observations_->timeseries.queueDepthEdges()));
            scenario_.network->stats().markRound();
          });
    }
    observations_->profiled = cfg.obs.profile;
    observations_->perfCounted = cfg.obs.perf;
  }
  // Installs the phase profiler for this run only (thread-local, restored
  // on scope exit even if the run throws).
  obs::Profiler::Activation profiling(
      observations_ && observations_->profiled ? &observations_->profiler
                                               : nullptr);
  // Same activation model for the work-counter ledger: every WMSN_PERF site
  // reports into this run's PerfStats, or is a no-op when counting is off.
  const bool perfOn = observations_ && observations_->perfCounted;
  obs::PerfStats::Activation perfCounting(perfOn ? &observations_->perf
                                                 : nullptr);
  // Resource telemetry rides alongside the counters but stays strictly
  // separate from deterministic output: wall clock over the run loop
  // (steady_clock — diagnostic only) and the allocation window.
  std::optional<obs::AllocationScope> allocWindow;
  std::chrono::steady_clock::time_point wallStart{};
  if (perfOn) {
    allocWindow.emplace();
    wallStart = std::chrono::steady_clock::now();
  }

  s.stack->startAll();

  std::uint32_t completed = 0;
  for (std::uint32_t round = 0; round < cfg.rounds; ++round) {
    const sim::Time roundStart = s.simulator.now();
    beginRound(round);
    scheduleTraffic(round, roundStart);
    s.simulator.runUntil(roundStart + cfg.roundDuration);
    completed = round + 1;
    if (recoveryTracker_) {
      const net::TrafficStats& t = s.network->stats();
      recoveryTracker_->onRoundEnd(round, t.generated() - faultPrevGenerated_,
                                   t.delivered() - faultPrevDelivered_,
                                   newFailuresThisRound_);
      faultPrevGenerated_ = t.generated();
      faultPrevDelivered_ = t.delivered();
    }
    roundObservers_.notify(round);
    if (cfg.stopAtFirstDeath && s.network->firstSensorDeathTime()) break;
  }
  // Drain grace: let the final round's in-flight frames land (aggregation
  // protocols flush just past the boundary) so the last round is not
  // artificially penalised.
  s.simulator.runUntil(s.simulator.now() + cfg.drainGrace);

  if (perfOn) {
    obs::ResourceTelemetry& tel = observations_->telemetry;
    tel.captured = true;
    tel.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
    tel.allocCount = allocWindow->count();
    tel.allocBytes = allocWindow->bytes();
    tel.peakRssKb = obs::currentPeakRssKb();
  }
  return collect(completed);
}

RunResult Experiment::collect(std::uint32_t roundsCompleted) {
  const Scenario& s = scenario_;
  RunResult r;
  r.protocol = toString(s.config.protocol);
  r.workload = workload::toString(s.config.workload.kind);
  r.roundsCompleted = roundsCompleted;

  if (const auto death = s.network->firstSensorDeathTime()) {
    r.firstDeathObserved = true;
    r.firstDeathSeconds = death->seconds();
    r.firstDeathRound = static_cast<std::uint32_t>(
        death->us / s.config.roundDuration.us);
  }
  r.aliveSensors = s.network->aliveSensorCount();

  const net::TrafficStats& t = s.network->stats();
  r.generated = t.generated();
  r.delivered = t.delivered();
  r.deliveryRatio = t.deliveryRatio();
  r.meanHops = t.hopStats().count() ? t.hopStats().mean() : 0.0;
  r.meanLatencyMs =
      t.latencyStats().count() ? t.latencyStats().mean() * 1e3 : 0.0;
  r.p95LatencyMs =
      t.latencyStats().count() ? t.latencyStats().percentile(95) * 1e3 : 0.0;
  r.controlFrames = t.controlFrames();
  r.dataFrames = t.dataFrames();
  r.controlBytes = t.controlBytes();
  r.dataBytes = t.dataBytes();
  r.collisions = t.collisions();
  r.duplicateDeliveries = t.duplicateDeliveries();
  r.perGatewayDeliveries = t.perGatewayDeliveries();

  r.macDrops = t.macDrops();
  r.queueDrops = t.queueDrops();
  const sim::Time endTime = s.simulator.now();
  double depthIntegral = 0.0;
  for (net::NodeId id = 0; id < s.network->size(); ++id) {
    const net::Mac& mac = s.network->node(id).mac();
    r.peakQueueDepth = std::max(r.peakQueueDepth, mac.peakQueueDepth());
    depthIntegral += mac.queueDepthIntegral(endTime);
  }
  if (endTime.us > 0 && s.network->size() > 0)
    r.meanQueueDepth =
        depthIntegral / endTime.seconds() /
        static_cast<double>(s.network->size());
  if (endTime.us > 0) {
    r.offeredPps = static_cast<double>(r.generated) / endTime.seconds();
    r.goodputPps = static_cast<double>(r.delivered) / endTime.seconds();
  }

  r.sensorEnergy = summarizeSensorEnergy(*s.network);
  r.gatewayEnergy = summarizeGatewayEnergy(*s.network);

  for (net::NodeId id = 0; id < s.network->size(); ++id) {
    if (const auto* sec = dynamic_cast<const routing::SecMlrRouting*>(
            &s.stack->at(id))) {
      r.rejectedMacs += sec->rejectedMacs();
      r.rejectedReplays += sec->rejectedReplays();
      r.rejectedTesla += sec->rejectedTesla();
    }
  }
  if (s.config.attack.kind != attacks::AttackKind::kNone)
    r.attackerStats =
        attacks::collectAttackerStats(*s.stack, s.config.attack);

  if (faultInjector_) {
    r.faults.sensorCrashes = faultInjector_->sensorCrashes();
    r.faults.sensorRecoveries = faultInjector_->sensorRecoveries();
    r.faults.gatewayFailures = faultInjector_->gatewayFailures();
    r.faults.gatewayRecoveries = faultInjector_->gatewayRecoveries();
    r.faults.failedSensorsAtEnd = s.network->failedSensorCount();
    r.faults.failedGatewaysAtEnd = s.network->failedGatewayCount();
  }
  if (s.config.faults.linkLoss.enabled)
    r.faults.linkFaultDrops = s.network->medium().framesLinkFaultDropped();
  if (recoveryTracker_) {
    r.faults.outageEpisodes = recoveryTracker_->episodes().size();
    r.faults.unrecoveredOutages = recoveryTracker_->unrecovered();
    r.faults.meanRecoveryLatencyS =
        recoveryTracker_->meanRecoveryLatencySeconds();
    r.faults.pdrDuringOutage = recoveryTracker_->pdrDuringOutage();
    r.faults.recoveryLatenciesS = recoveryTracker_->recoveryLatenciesSeconds();
  }

  r.eventsProcessed = s.simulator.eventsProcessed();

  if (observations_) {
    if (s.config.obs.traceSpans)
      observations_->trace = s.network->tracer()->log();
    if (s.config.obs.metrics) {
      fillRegistry(s, r, observations_->metrics);
      // Fault metrics only appear when a plan was active, so fault-free
      // metrics JSON stays byte-identical to older builds.
      if (s.config.faults.any())
        fillFaultMetrics(s, r, observations_->metrics);
    }
    if (observations_->perfCounted) {
      // Deterministic numerators for the telemetry's derived rates; copied
      // here so multi-seed merges can re-derive rates from sums.
      observations_->telemetry.rounds = roundsCompleted;
      observations_->telemetry.frames = r.controlFrames + r.dataFrames;
    }
    r.observations = observations_;
  }
  return r;
}

RunResult runScenario(const ScenarioConfig& config) {
  auto scenario = buildScenario(config);
  Experiment experiment(*scenario);
  return experiment.run();
}

}  // namespace wmsn::core
