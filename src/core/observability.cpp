#include "core/observability.hpp"

#include <algorithm>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "routing/secmlr.hpp"

namespace wmsn::core {

obs::RoundSample RoundCursor::sample(const Scenario& scenario,
                                     std::uint32_t round,
                                     const std::vector<double>& depthEdges) {
  const net::SensorNetwork& network = *scenario.network;
  const net::TrafficStats& t = network.stats();
  const sim::Time now = scenario.simulator.now();

  obs::RoundSample s;
  s.round = round;
  s.timeSeconds = now.seconds();

  s.generated = t.generated() - prevGenerated_;
  s.delivered = t.delivered() - prevDelivered_;
  s.pdrRound = s.generated > 0 ? static_cast<double>(s.delivered) /
                                     static_cast<double>(s.generated)
                               : 1.0;
  s.pdrCumulative = t.deliveryRatio();
  s.controlBytes = t.controlBytes() - prevControlBytes_;
  s.dataBytes = t.dataBytes() - prevDataBytes_;
  s.queueDrops = t.queueDrops() - prevQueueDrops_;
  s.macDrops = t.macDrops() - prevMacDrops_;
  s.collisions = t.collisions() - prevCollisions_;

  prevGenerated_ = t.generated();
  prevDelivered_ = t.delivered();
  prevControlBytes_ = t.controlBytes();
  prevDataBytes_ = t.dataBytes();
  prevQueueDrops_ = t.queueDrops();
  prevMacDrops_ = t.macDrops();
  prevCollisions_ = t.collisions();

  // Queue depths: per-node peaks within the round window (histogram +
  // network-wide peak) and the time-weighted mean from the integral delta.
  s.queueDepthHist.assign(depthEdges.size() + 1, 0);
  for (const auto& [node, peak] : t.roundPeakQueueDepthByNode()) {
    const double depth = static_cast<double>(peak);
    const auto it =
        std::lower_bound(depthEdges.begin(), depthEdges.end(), depth);
    ++s.queueDepthHist[static_cast<std::size_t>(it - depthEdges.begin())];
    s.queuePeakDepth = std::max(s.queuePeakDepth,
                                static_cast<std::uint64_t>(peak));
  }
  double depthIntegral = 0.0;
  for (net::NodeId id = 0; id < network.size(); ++id)
    depthIntegral += network.node(id).mac().queueDepthIntegral(now);
  const double windowSeconds = now.seconds() - prevTimeSeconds_;
  if (windowSeconds > 0.0 && network.size() > 0)
    s.queueMeanDepth = (depthIntegral - prevDepthIntegral_) / windowSeconds /
                       static_cast<double>(network.size());
  prevDepthIntegral_ = depthIntegral;
  prevTimeSeconds_ = now.seconds();

  // Per-gateway first deliveries this round, by gateway ordinal.
  s.perGatewayDeliveries.assign(gatewayCount_, 0);
  if (prevPerGateway_.empty()) prevPerGateway_.assign(gatewayCount_, 0);
  const auto& perGateway = t.perGatewayDeliveries();
  for (std::size_t g = 0; g < gatewayCount_; ++g) {
    const net::NodeId gw = network.gatewayIds()[g];
    const auto it = perGateway.find(gw);
    const std::uint64_t total = it == perGateway.end() ? 0 : it->second;
    s.perGatewayDeliveries[g] = total - prevPerGateway_[g];
    prevPerGateway_[g] = total;
  }

  // Energy distribution over sensors, cumulative at the boundary (the D²
  // trajectory of eq. 1).
  const EnergySummary energy = summarizeSensorEnergy(network);
  s.energyMinJ = energy.minJ;
  s.energyMeanJ = energy.meanJ;
  s.energyMaxJ = energy.maxJ;
  s.energyVarianceD2 = energy.varianceD2;
  s.aliveSensors = network.aliveSensorCount();
  s.failedSensors = network.failedSensorCount();
  s.failedGateways = network.failedGatewayCount();
  return s;
}

void fillRegistry(const Scenario& scenario, const RunResult& result,
                  obs::MetricsRegistry& registry) {
  const obs::Labels proto = {{"protocol", result.protocol}};
  const net::SensorNetwork& network = *scenario.network;
  const net::TrafficStats& t = network.stats();

  // --- TrafficStats -------------------------------------------------------
  registry.counter("wmsn_readings_generated_total", proto).add(t.generated());
  registry.counter("wmsn_readings_delivered_total", proto).add(t.delivered());
  registry.counter("wmsn_duplicate_deliveries_total", proto)
      .add(t.duplicateDeliveries());
  registry.counter("wmsn_control_frames_total", proto).add(t.controlFrames());
  registry.counter("wmsn_data_frames_total", proto).add(t.dataFrames());
  registry.counter("wmsn_control_bytes_total", proto).add(t.controlBytes());
  registry.counter("wmsn_data_bytes_total", proto).add(t.dataBytes());
  registry.counter("wmsn_collisions_total", proto).add(t.collisions());
  registry.counter("wmsn_mac_drops_total", proto).add(t.macDrops());
  registry.counter("wmsn_queue_drops_total", proto).add(t.queueDrops());
  registry.gauge("wmsn_pdr", proto).set(t.deliveryRatio());
  registry.gauge("wmsn_rounds_completed", proto)
      .set(static_cast<double>(result.roundsCompleted));

  for (const auto& [kind, frames] : t.framesByKind()) {
    obs::Labels labels = proto;
    labels.push_back({"kind", net::kindName(kind)});
    registry.counter("wmsn_frames_total", std::move(labels)).add(frames);
  }

  // Hop and latency distributions of first deliveries.
  auto& hops = registry.histogram("wmsn_delivery_hops",
                                  {1, 2, 3, 4, 5, 6, 8, 10, 15}, proto);
  for (const double h : t.hopStats().samples()) hops.observe(h);
  auto& latency = registry.histogram(
      "wmsn_delivery_latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}, proto);
  for (const double l : t.latencyStats().samples()) latency.observe(l * 1e3);

  // Load balance: first deliveries per gateway.
  for (std::size_t g = 0; g < network.gatewayIds().size(); ++g) {
    const net::NodeId gw = network.gatewayIds()[g];
    const auto it = t.perGatewayDeliveries().find(gw);
    obs::Labels labels = proto;
    labels.push_back({"gateway", std::to_string(g)});
    registry.counter("wmsn_gateway_deliveries_total", std::move(labels))
        .add(it == t.perGatewayDeliveries().end() ? 0 : it->second);
  }

  // --- MAC queues ---------------------------------------------------------
  for (const auto& [node, drops] : t.queueDropsByNode()) {
    obs::Labels labels = proto;
    labels.push_back({"node", std::to_string(node)});
    registry.counter("wmsn_node_queue_drops_total", std::move(labels))
        .add(drops);
  }
  auto& depths = registry.histogram("wmsn_node_peak_queue_depth",
                                    {1, 2, 4, 8, 16, 32}, proto);
  for (const auto& [node, peak] : t.peakQueueDepthByNode())
    depths.observe(static_cast<double>(peak));

  // --- energy model -------------------------------------------------------
  const EnergySummary sensors = summarizeSensorEnergy(network);
  registry.gauge("wmsn_sensor_energy_total_j", proto).set(sensors.totalJ);
  registry.gauge("wmsn_sensor_energy_mean_j", proto).set(sensors.meanJ);
  registry.gauge("wmsn_sensor_energy_min_j", proto).set(sensors.minJ);
  registry.gauge("wmsn_sensor_energy_max_j", proto).set(sensors.maxJ);
  registry.gauge("wmsn_sensor_energy_variance_d2", proto)
      .set(sensors.varianceD2);
  registry.gauge("wmsn_sensor_energy_jain_fairness", proto)
      .set(sensors.jainFairness);
  registry.gauge("wmsn_alive_sensors", proto)
      .set(static_cast<double>(network.aliveSensorCount()));
  // Consumed energy spread as fractions of the initial budget — the
  // dispersion view behind the D² claim.
  const double budget = scenario.config.energy.initialEnergyJ;
  auto& consumed = registry.histogram(
      "wmsn_sensor_energy_consumed_fraction",
      {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, proto);
  for (const double e : sensors.perSensorJ)
    consumed.observe(budget > 0.0 ? e / budget : 0.0);

  // --- routing protocols --------------------------------------------------
  std::uint64_t rejectedMacs = 0, rejectedReplays = 0, rejectedTesla = 0;
  for (net::NodeId id = 0; id < network.size(); ++id) {
    if (const auto* sec = dynamic_cast<const routing::SecMlrRouting*>(
            &scenario.stack->at(id))) {
      rejectedMacs += sec->rejectedMacs();
      rejectedReplays += sec->rejectedReplays();
      rejectedTesla += sec->rejectedTesla();
    }
  }
  if (scenario.config.protocol == ProtocolKind::kSecMlr) {
    registry.counter("wmsn_secmlr_rejected_macs_total", proto)
        .add(rejectedMacs);
    registry.counter("wmsn_secmlr_rejected_replays_total", proto)
        .add(rejectedReplays);
    registry.counter("wmsn_secmlr_rejected_tesla_total", proto)
        .add(rejectedTesla);
  }

  registry.counter("wmsn_events_processed_total", proto)
      .add(scenario.simulator.eventsProcessed());
}

void fillFaultMetrics(const Scenario& scenario, const RunResult& result,
                      obs::MetricsRegistry& registry) {
  const obs::Labels proto = {{"protocol", result.protocol}};
  const FaultSummary& f = result.faults;

  registry.counter("wmsn_fault_sensor_crashes_total", proto)
      .add(f.sensorCrashes);
  registry.counter("wmsn_fault_sensor_recoveries_total", proto)
      .add(f.sensorRecoveries);
  registry.counter("wmsn_fault_gateway_failures_total", proto)
      .add(f.gatewayFailures);
  registry.counter("wmsn_fault_gateway_recoveries_total", proto)
      .add(f.gatewayRecoveries);
  registry.counter("wmsn_fault_link_drops_total", proto)
      .add(f.linkFaultDrops);

  registry.gauge("wmsn_fault_failed_sensors", proto)
      .set(static_cast<double>(f.failedSensorsAtEnd));
  registry.gauge("wmsn_fault_failed_gateways", proto)
      .set(static_cast<double>(f.failedGatewaysAtEnd));
  registry.gauge("wmsn_fault_pdr_during_outage", proto)
      .set(f.pdrDuringOutage);
  registry.gauge("wmsn_fault_unrecovered_outages", proto)
      .set(static_cast<double>(f.unrecoveredOutages));

  // Recovery latencies bucketed in round units so same-config seeds merge:
  // the edges derive from the round duration, not the observed values.
  const double roundS = scenario.config.roundDuration.seconds();
  auto& latency = registry.histogram(
      "wmsn_fault_recovery_latency_s",
      {0.5 * roundS, 1.5 * roundS, 2.5 * roundS, 3.5 * roundS, 5.5 * roundS,
       8.5 * roundS},
      proto);
  for (const double l : f.recoveryLatenciesS) latency.observe(l);
}

void fillPerfMetrics(const std::string& protocol, const obs::PerfStats& perf,
                     obs::MetricsRegistry& registry) {
  const obs::Labels proto = {{"protocol", protocol}};
  for (std::size_t i = 0; i < obs::kPerfCounterCount; ++i) {
    const auto counter = static_cast<obs::PerfCounter>(i);
    registry
        .counter(std::string("wmsn_perf_") + obs::metricName(counter) +
                     "_total",
                 proto)
        .add(perf.value(counter));
  }
}

}  // namespace wmsn::core
