#pragma once

#include <string>

#include "core/builder.hpp"
#include "util/svg.hpp"

namespace wmsn::core {

struct VizOptions {
  bool drawLinks = true;        ///< grey edges between sensors in range
  bool drawPlaces = true;       ///< X markers at the feasible places
  bool energyHeat = true;       ///< colour sensors by consumed-energy share
  bool drawLegend = true;
  double nodeRadius = 3.0;
};

/// Renders a scenario's current state — topology, links, gateway positions,
/// feasible places, and a per-sensor energy heat map (green = cold,
/// red = the network's hottest node). Dead sensors render as hollow grey;
/// sleeping sensors as faded. Call after (or between) Experiment rounds.
SvgWriter renderTopology(const Scenario& scenario, VizOptions options = {});

/// Convenience: render and write to `path`.
void writeTopologySvg(const Scenario& scenario, const std::string& path,
                      VizOptions options = {});

}  // namespace wmsn::core
