#pragma once

#include <memory>

#include "core/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/packet_trace.hpp"
#include "obs/perf_stats.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"

namespace wmsn::core {

struct RunResult;

/// Everything one run observed beyond the RunResult aggregates, produced
/// when any ScenarioConfig::obs option is on. Carried by RunResult as a
/// shared_ptr so results stay cheap to copy through sweeps.
struct RunObservations {
  obs::MetricsRegistry metrics;
  obs::TimeSeriesRecorder timeseries{0};
  obs::Profiler profiler;
  bool profiled = false;
  /// Deterministic work-counter ledger (only when ScenarioConfig::obs.perf).
  obs::PerfStats perf;
  bool perfCounted = false;
  /// Non-deterministic resource telemetry paired with `perf`, never merged
  /// into deterministic outputs.
  obs::ResourceTelemetry telemetry;
  /// Retained packet spans (only when ScenarioConfig::obs.traceSpans).
  obs::PacketTraceLog trace;
};

/// Incremental round sampler: remembers the previous round boundary's
/// cumulative counters so each RoundSample reports per-round deltas. One
/// cursor per run, sampled once per completed round.
class RoundCursor {
 public:
  explicit RoundCursor(std::size_t gatewayCount)
      : gatewayCount_(gatewayCount) {}

  /// Builds the sample for the round that just completed and advances the
  /// cursor. `depthEdges` are the recorder's queue-depth bucket edges.
  obs::RoundSample sample(const Scenario& scenario, std::uint32_t round,
                          const std::vector<double>& depthEdges);

 private:
  std::size_t gatewayCount_;
  std::uint64_t prevGenerated_ = 0;
  std::uint64_t prevDelivered_ = 0;
  std::uint64_t prevControlBytes_ = 0;
  std::uint64_t prevDataBytes_ = 0;
  std::uint64_t prevQueueDrops_ = 0;
  std::uint64_t prevMacDrops_ = 0;
  std::uint64_t prevCollisions_ = 0;
  std::vector<std::uint64_t> prevPerGateway_;
  double prevDepthIntegral_ = 0.0;
  double prevTimeSeconds_ = 0.0;
};

/// Fills `registry` from the run's four instrumentation sources —
/// TrafficStats, the per-node MAC queues, the energy model, and the routing
/// protocols (SecMLR rejection counters) — under a {protocol} label.
/// Deterministic: every value derives from simulation state, and export
/// order is fixed by the registry.
void fillRegistry(const Scenario& scenario, const RunResult& result,
                  obs::MetricsRegistry& registry);

/// Adds the `wmsn_fault_*` family (crash/recovery counters, outage gauges,
/// the recovery-latency histogram) from a run's FaultSummary. Called only
/// when the scenario's fault plan is active so fault-free metrics exports
/// stay byte-identical to older builds.
void fillFaultMetrics(const Scenario& scenario, const RunResult& result,
                      obs::MetricsRegistry& registry);

/// Adds the `wmsn_perf_*` counter family from a run's PerfStats ledger under
/// a {protocol} label. Deterministic; used only for the dedicated perf
/// export (`--perf-out`) — never mixed into the delivery-metrics registry,
/// so enabling counters cannot perturb an existing metrics file. Takes the
/// protocol name (not a Scenario) so multi-seed merges can fill a registry
/// after the scenarios are gone.
void fillPerfMetrics(const std::string& protocol, const obs::PerfStats& perf,
                     obs::MetricsRegistry& registry);

}  // namespace wmsn::core
