#include "core/config.hpp"

#include "util/require.hpp"

namespace wmsn::core {

std::string toString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFlooding: return "flooding";
    case ProtocolKind::kGossip: return "gossip";
    case ProtocolKind::kSpin: return "spin";
    case ProtocolKind::kDiffusion: return "diffusion";
    case ProtocolKind::kLeach: return "leach";
    case ProtocolKind::kPegasis: return "pegasis";
    case ProtocolKind::kTeen: return "teen";
    case ProtocolKind::kSingleSink: return "single-sink";
    case ProtocolKind::kSpr: return "spr";
    case ProtocolKind::kMlr: return "mlr";
    case ProtocolKind::kSecMlr: return "secmlr";
  }
  return "unknown";
}

std::string toString(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kUniform: return "uniform";
    case DeploymentKind::kGrid: return "grid";
    case DeploymentKind::kClustered: return "clustered";
  }
  return "unknown";
}

void ScenarioConfig::validate() const {
  WMSN_REQUIRE_MSG(sensorCount >= 1, "sensorCount");
  WMSN_REQUIRE_MSG(gatewayCount >= 1, "gatewayCount");
  WMSN_REQUIRE_MSG(feasiblePlaceCount >= gatewayCount,
                   "feasiblePlaceCount must be >= gatewayCount (|P| >= m)");
  WMSN_REQUIRE_MSG(width > 0.0 && height > 0.0, "area");
  WMSN_REQUIRE_MSG(radioRange > 0.0, "radioRange");
  WMSN_REQUIRE_MSG(rounds >= 1, "rounds");
  WMSN_REQUIRE_MSG(roundDuration.us > 0, "roundDuration");
  WMSN_REQUIRE_MSG(trafficStart < roundDuration,
                   "trafficStart must fall inside the round");
  for (const GatewayFailure& f : failures)
    WMSN_REQUIRE_MSG(f.gatewayOrdinal < gatewayCount, "failure ordinal");
  for (const fault::FaultEvent& e : faults.events) {
    const std::size_t limit = e.target == fault::FaultTargetKind::kSensor
                                  ? sensorCount
                                  : gatewayCount;
    WMSN_REQUIRE_MSG(e.ordinal < limit, "fault plan event ordinal");
  }
  {
    const auto& ge = faults.linkLoss;
    WMSN_REQUIRE_MSG(ge.pGoodToBad >= 0.0 && ge.pGoodToBad <= 1.0,
                     "linkLoss.pGoodToBad");
    WMSN_REQUIRE_MSG(ge.pBadToGood >= 0.0 && ge.pBadToGood <= 1.0,
                     "linkLoss.pBadToGood");
    WMSN_REQUIRE_MSG(ge.lossGood >= 0.0 && ge.lossGood <= 1.0,
                     "linkLoss.lossGood");
    WMSN_REQUIRE_MSG(ge.lossBad >= 0.0 && ge.lossBad <= 1.0,
                     "linkLoss.lossBad");
    if (ge.enabled)
      WMSN_REQUIRE_MSG(ge.pGoodToBad + ge.pBadToGood > 0.0,
                       "linkLoss needs at least one nonzero transition");
  }
  if (attack.kind == attacks::AttackKind::kWormhole)
    WMSN_REQUIRE_MSG(attackerCount == 2 || attack.attackers.size() == 2,
                     "wormhole needs exactly 2 attackers");
  if (attack.kind != attacks::AttackKind::kNone)
    WMSN_REQUIRE_MSG(protocol == ProtocolKind::kMlr ||
                         protocol == ProtocolKind::kSecMlr,
                     "attacks target MLR/SecMLR networks");
  if (workload.kind == workload::WorkloadKind::kPeriodic ||
      workload.kind == workload::WorkloadKind::kPoisson)
    WMSN_REQUIRE_MSG(workload.ratePerSensor > 0.0,
                     "workload ratePerSensor must be positive");
  if (workload.kind == workload::WorkloadKind::kBurst) {
    WMSN_REQUIRE_MSG(workload.burst.frontSpeed > 0.0, "burst frontSpeed");
    WMSN_REQUIRE_MSG(workload.burst.radius > 0.0, "burst radius");
    WMSN_REQUIRE_MSG(workload.burst.reportInterval > 0.0,
                     "burst reportInterval");
    WMSN_REQUIRE_MSG(workload.burst.backgroundRate >= 0.0,
                     "burst backgroundRate");
  }
  if (macQueue.capacity > 0)
    WMSN_REQUIRE_MSG(mac == net::MacKind::kCsma,
                     "finite MAC queues require the CSMA MAC");
  if (sleep.enabled)
    WMSN_REQUIRE_MSG(protocol == ProtocolKind::kMlr,
                     "sleep scheduling requires MLR's delegation support "
                     "(a sleeping SecMLR node cannot hold secure sessions)");
}

}  // namespace wmsn::core
