#pragma once

#include <memory>

#include "core/config.hpp"
#include "net/deployment.hpp"
#include "net/mobility.hpp"
#include "routing/protocol.hpp"

namespace wmsn::core {

/// One fully-wired scenario: simulator, sensor network, per-node protocol
/// stack, gateway mobility schedule, and the feasible-place map. Owned as a
/// unit; drive it with core::Experiment.
struct Scenario {
  ScenarioConfig config;
  sim::Simulator simulator;
  std::vector<net::Point> feasiblePlaces;
  std::unique_ptr<net::SensorNetwork> network;
  std::unique_ptr<routing::ProtocolStack> stack;
  std::unique_ptr<net::GatewaySchedule> schedule;

  Scenario() = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
};

/// Builds a connected scenario from the config (retrying deployments until
/// every sensor can reach a gateway), instantiates the chosen protocol on
/// every node, and installs the configured attack, if any.
std::unique_ptr<Scenario> buildScenario(const ScenarioConfig& config);

/// Builds a scenario from explicit positions (the paper's worked examples —
/// Fig. 2, Table 1 — use exact layouts). `gatewayPlaceOrdinals` selects
/// which feasible places the gateways initially occupy.
std::unique_ptr<Scenario> buildScenarioAt(
    const ScenarioConfig& config, std::vector<net::Point> sensorPositions,
    std::vector<net::Point> feasiblePlaces,
    std::vector<std::size_t> gatewayPlaceOrdinals,
    std::unique_ptr<net::GatewaySchedule> schedule = nullptr);

}  // namespace wmsn::core
