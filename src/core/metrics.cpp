#include "core/metrics.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace wmsn::core {

namespace {
EnergySummary summarize(const net::SensorNetwork& network,
                        const std::vector<net::NodeId>& ids) {
  EnergySummary out;
  RunningStats stats;
  for (net::NodeId id : ids) {
    const net::Battery& b = network.node(id).battery();
    const double e = b.consumedJ();
    out.perSensorJ.push_back(e);
    out.txJ += b.txJ();
    out.rxJ += b.rxJ();
    out.cpuJ += b.cpuJ();
    stats.add(e);
  }
  out.totalJ = stats.sum();
  out.meanJ = stats.mean();
  // The paper's D² (eq. 1) is the raw sum of squared deviations.
  out.varianceD2 =
      stats.variancePopulation() * static_cast<double>(stats.count());
  out.stddevJ = stats.stddev();
  out.minJ = stats.min();
  out.maxJ = stats.max();
  out.jainFairness = jainFairness(out.perSensorJ);
  return out;
}
}  // namespace

EnergySummary summarizeSensorEnergy(const net::SensorNetwork& network) {
  return summarize(network, network.sensorIds());
}

EnergySummary summarizeGatewayEnergy(const net::SensorNetwork& network) {
  return summarize(network, network.gatewayIds());
}

}  // namespace wmsn::core
