#include "core/placement.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/require.hpp"

namespace wmsn::core {

std::vector<std::uint32_t> hopField(const std::vector<net::Point>& sensors,
                                    const net::Point& place,
                                    double radioRange) {
  const double r2 = radioRange * radioRange;
  std::vector<std::uint32_t> dist(sensors.size(), kUnreachableHops);
  std::deque<std::size_t> frontier;
  // Seed: sensors in direct range of the place are 1 hop from a gateway
  // parked there.
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    if (net::distanceSq(sensors[i], place) <= r2) {
      dist[i] = 1;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (std::size_t j = 0; j < sensors.size(); ++j) {
      if (dist[j] != kUnreachableHops) continue;
      if (net::distanceSq(sensors[cur], sensors[j]) <= r2) {
        dist[j] = dist[cur] + 1;
        frontier.push_back(j);
      }
    }
  }
  return dist;
}

namespace {

double costOfMinField(const std::vector<std::uint32_t>& minField) {
  // Unreachable sensors dominate the objective so the planner always
  // prefers coverage over shaving hops.
  constexpr double kPenalty = 1e6;
  double cost = 0.0;
  for (std::uint32_t h : minField)
    cost += (h == kUnreachableHops) ? kPenalty : static_cast<double>(h);
  return cost;
}

}  // namespace

std::vector<std::size_t> planGatewayPlaces(
    const std::vector<net::Point>& sensors,
    const std::vector<net::Point>& places, std::size_t m,
    double radioRange) {
  WMSN_REQUIRE(m >= 1 && m <= places.size());

  // Precompute the hop field of every candidate place once.
  std::vector<std::vector<std::uint32_t>> fields;
  fields.reserve(places.size());
  for (const net::Point& p : places)
    fields.push_back(hopField(sensors, p, radioRange));

  std::vector<std::size_t> chosen;
  std::vector<std::uint32_t> minField(sensors.size(), kUnreachableHops);

  for (std::size_t pick = 0; pick < m; ++pick) {
    double bestCost = std::numeric_limits<double>::max();
    std::size_t bestPlace = places.size();
    for (std::size_t p = 0; p < places.size(); ++p) {
      if (std::find(chosen.begin(), chosen.end(), p) != chosen.end())
        continue;
      std::vector<std::uint32_t> candidate(minField);
      for (std::size_t s = 0; s < sensors.size(); ++s)
        candidate[s] = std::min(candidate[s], fields[p][s]);
      const double cost = costOfMinField(candidate);
      if (cost < bestCost) {
        bestCost = cost;
        bestPlace = p;
      }
    }
    WMSN_REQUIRE(bestPlace < places.size());
    chosen.push_back(bestPlace);
    for (std::size_t s = 0; s < sensors.size(); ++s)
      minField[s] = std::min(minField[s], fields[bestPlace][s]);
  }
  return chosen;
}

double totalHopCost(const std::vector<net::Point>& sensors,
                    const std::vector<net::Point>& places,
                    const std::vector<std::size_t>& selection,
                    double radioRange) {
  std::vector<std::uint32_t> minField(sensors.size(), kUnreachableHops);
  for (std::size_t p : selection) {
    WMSN_REQUIRE(p < places.size());
    const auto field = hopField(sensors, places[p], radioRange);
    for (std::size_t s = 0; s < sensors.size(); ++s)
      minField[s] = std::min(minField[s], field[s]);
  }
  return costOfMinField(minField);
}

std::size_t estimateGatewayCount(const std::vector<net::Point>& sensors,
                                 const std::vector<net::Point>& places,
                                 double radioRange, double kneeFraction) {
  WMSN_REQUIRE(!places.empty());
  double prevCost = std::numeric_limits<double>::max();
  for (std::size_t m = 1; m <= places.size(); ++m) {
    const auto selection =
        planGatewayPlaces(sensors, places, m, radioRange);
    const double cost = totalHopCost(sensors, places, selection, radioRange);
    if (m > 1 && prevCost > 0.0 &&
        (prevCost - cost) / prevCost < kneeFraction)
      return m - 1;  // the previous m was already within the knee
    prevCost = cost;
  }
  return places.size();
}

}  // namespace wmsn::core
