#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace wmsn::crypto {

/// FIPS 180-4 SHA-256, implemented from scratch (no external crypto
/// dependency is available offline). Used as the hash for HMAC, the key
/// derivation in KeyStore, and the TESLA one-way chains.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Streaming interface.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& s);

 private:
  void processBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t bufferLen_ = 0;
  std::uint64_t totalBits_ = 0;
  bool finished_ = false;
};

}  // namespace wmsn::crypto
