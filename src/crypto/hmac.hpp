#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace wmsn::crypto {

/// A symmetric key as distributed to sensor nodes (SecMLR pre-distributes one
/// K_ij per (sensor, gateway) pair, §6.2).
using Key = std::array<std::uint8_t, 16>;

/// RFC 2104 HMAC over SHA-256.
class HmacSha256 {
 public:
  static constexpr std::size_t kDigestSize = Sha256::kDigestSize;
  using Digest = Sha256::Digest;

  static Digest mac(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> message);

  static Digest mac(const Key& key, std::span<const std::uint8_t> message) {
    return mac(std::span<const std::uint8_t>(key.data(), key.size()), message);
  }
};

/// Sensor-network packets carry truncated MACs (SPINS uses 8 bytes) — full
/// 32-byte tags would dominate the radio energy budget of tiny packets.
inline constexpr std::size_t kPacketMacSize = 8;
using PacketMac = std::array<std::uint8_t, kPacketMacSize>;

/// Computes the truncated packet MAC over `message`, binding the freshness
/// counter `counter` into the MAC'd data as SecMLR specifies:
/// MAC(K, C | message).
PacketMac packetMac(const Key& key, std::uint64_t counter,
                    std::span<const std::uint8_t> message);

/// Constant-time verification of a truncated packet MAC.
bool verifyPacketMac(const Key& key, std::uint64_t counter,
                     std::span<const std::uint8_t> message,
                     const PacketMac& tag);

}  // namespace wmsn::crypto
