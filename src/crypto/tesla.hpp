#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/hmac.hpp"
#include "sim/time.hpp"

namespace wmsn::crypto {

/// µTESLA-style authenticated broadcast (Perrig et al., SPINS — the paper's
/// citation [31]) used by SecMLR for gateway-move notifications (§6.2.3).
///
/// The broadcaster generates a one-way hash chain K_n → … → K_0 with
/// K_i = H(K_{i+1}); K_0 is the commitment pre-loaded onto receivers. Time is
/// divided into intervals; a message sent in interval i is MAC'd with a key
/// derived from K_i, and K_i itself is disclosed `disclosureDelay` intervals
/// later. A receiver buffers messages whose key is still secret (checking the
/// security condition — the key cannot already be disclosed on arrival) and
/// authenticates them once the key is published and verified against the
/// chain.
struct TeslaParams {
  std::size_t chainLength = 64;
  sim::Time intervalDuration = sim::Time::seconds(1.0);
  sim::Time startTime = sim::Time::zero();
  std::uint32_t disclosureDelay = 2;  ///< intervals between use and disclosure
};

class TeslaChain {
 public:
  /// Builds the full chain from a secret seed. chain()[i] is K_i;
  /// chain()[0] is the commitment.
  TeslaChain(const Key& seed, std::size_t length);

  const Key& key(std::size_t interval) const;
  const Key& commitment() const { return keys_.front(); }
  std::size_t length() const { return keys_.size(); }

  /// One application of the chain's one-way function: K_i = step(K_{i+1}).
  static Key step(const Key& next);
  /// The MAC key for interval i, derived (one-way) from chain key K_i.
  static Key macKey(const Key& chainKey);

 private:
  std::vector<Key> keys_;  // keys_[i] = K_i
};

struct TeslaAuthenticatedMessage {
  Bytes payload;
  std::uint32_t interval = 0;
  PacketMac mac{};
};

class TeslaBroadcaster {
 public:
  TeslaBroadcaster(const Key& seed, TeslaParams params);

  const Key& commitment() const { return chain_.commitment(); }
  const TeslaParams& params() const { return params_; }

  /// Which interval a timestamp falls into. Requires now >= startTime.
  std::uint32_t intervalAt(sim::Time now) const;

  /// MAC `payload` with the current interval's (still secret) key.
  TeslaAuthenticatedMessage sign(const Bytes& payload, sim::Time now) const;

  /// The key the broadcaster may safely disclose at `now` (the key of
  /// interval now − disclosureDelay), or nullopt if none yet.
  std::optional<std::pair<std::uint32_t, Key>> disclosableKey(
      sim::Time now) const;

  /// Direct chain access — the broadcaster IS the secret holder; callers
  /// use this to publish K_i once interval i+d begins.
  const Key& chainKey(std::size_t interval) const {
    return chain_.key(interval);
  }

 private:
  TeslaChain chain_;
  TeslaParams params_;
};

class TeslaReceiver {
 public:
  /// Receivers are bootstrapped with the commitment K_0 and the public
  /// schedule (params) — but never the seed.
  TeslaReceiver(const Key& commitment, TeslaParams params);

  /// Result of presenting a broadcast message to the receiver.
  enum class Accept {
    kBuffered,      ///< safe; awaiting key disclosure
    kUnsafe,        ///< violated the security condition (key already public)
    kStaleInterval  ///< interval older than an already-verified key
  };

  Accept onMessage(const TeslaAuthenticatedMessage& msg, sim::Time arrival);

  /// Presents a disclosed key. Returns the payloads of all buffered messages
  /// that verify under it; forged/corrupt messages are dropped. A key that
  /// does not verify against the chain is rejected (returns nullopt).
  std::optional<std::vector<Bytes>> onKeyDisclosure(std::uint32_t interval,
                                                    const Key& key);

  std::size_t bufferedCount() const { return buffer_.size(); }
  std::uint32_t verifiedThrough() const { return verifiedInterval_; }

 private:
  std::uint32_t intervalAt(sim::Time now) const;

  Key lastVerifiedKey_;
  std::uint32_t verifiedInterval_ = 0;  // K_0 verified by construction
  TeslaParams params_;
  std::vector<TeslaAuthenticatedMessage> buffer_;
};

}  // namespace wmsn::crypto
