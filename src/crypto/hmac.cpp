#include "crypto/hmac.hpp"

#include <algorithm>
#include <cstring>

#include "obs/profiler.hpp"

namespace wmsn::crypto {

HmacSha256::Digest HmacSha256::mac(std::span<const std::uint8_t> key,
                                   std::span<const std::uint8_t> message) {
  WMSN_PROFILE_PHASE(kCrypto);
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> keyBlock{};

  if (key.size() > kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::memcpy(keyBlock.data(), digest.data(), digest.size());
  } else {
    std::memcpy(keyBlock.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = keyBlock[i] ^ 0x36;
    opad[i] = keyBlock[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto innerDigest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(innerDigest);
  return outer.finish();
}

PacketMac packetMac(const Key& key, std::uint64_t counter,
                    std::span<const std::uint8_t> message) {
  ByteWriter w;
  w.u64(counter);
  w.raw(message);
  const auto full = HmacSha256::mac(key, w.data());
  PacketMac tag;
  std::copy_n(full.begin(), tag.size(), tag.begin());
  return tag;
}

bool verifyPacketMac(const Key& key, std::uint64_t counter,
                     std::span<const std::uint8_t> message,
                     const PacketMac& tag) {
  const PacketMac expected = packetMac(key, counter, message);
  return constantTimeEqual(
      std::span<const std::uint8_t>(expected.data(), expected.size()),
      std::span<const std::uint8_t>(tag.data(), tag.size()));
}

}  // namespace wmsn::crypto
