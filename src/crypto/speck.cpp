#include "crypto/speck.hpp"

namespace wmsn::crypto {

namespace {
inline std::uint32_t ror(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}
inline std::uint32_t rol(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
inline std::uint32_t loadLe32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
inline void storeLe32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
}  // namespace

Speck64::Speck64(const Key& key) {
  // Key schedule for Speck64/128: four 32-bit key words.
  std::uint32_t k = loadLe32(key.data());
  std::array<std::uint32_t, 3> l = {loadLe32(key.data() + 4),
                                    loadLe32(key.data() + 8),
                                    loadLe32(key.data() + 12)};
  for (int i = 0; i < kRounds; ++i) {
    roundKeys_[static_cast<std::size_t>(i)] = k;
    const std::size_t idx = static_cast<std::size_t>(i % 3);
    std::uint32_t li = l[idx];
    li = (ror(li, 8) + k) ^ static_cast<std::uint32_t>(i);
    k = rol(k, 3) ^ li;
    l[idx] = li;
  }
}

std::pair<std::uint32_t, std::uint32_t> Speck64::encryptWords(
    std::uint32_t x, std::uint32_t y) const {
  for (int i = 0; i < kRounds; ++i) {
    x = (ror(x, 8) + y) ^ roundKeys_[static_cast<std::size_t>(i)];
    y = rol(y, 3) ^ x;
  }
  return {x, y};
}

Speck64::Block Speck64::encrypt(const Block& plaintext) const {
  std::uint32_t y = loadLe32(plaintext.data());
  std::uint32_t x = loadLe32(plaintext.data() + 4);
  auto [ex, ey] = encryptWords(x, y);
  Block out;
  storeLe32(out.data(), ey);
  storeLe32(out.data() + 4, ex);
  return out;
}

Speck64::Block Speck64::decrypt(const Block& ciphertext) const {
  std::uint32_t y = loadLe32(ciphertext.data());
  std::uint32_t x = loadLe32(ciphertext.data() + 4);
  for (int i = kRounds - 1; i >= 0; --i) {
    y = ror(y ^ x, 3);
    x = rol((x ^ roundKeys_[static_cast<std::size_t>(i)]) - y, 8);
  }
  Block out;
  storeLe32(out.data(), y);
  storeLe32(out.data() + 4, x);
  return out;
}

}  // namespace wmsn::crypto
