#include "crypto/ctr.hpp"

#include "obs/profiler.hpp"

namespace wmsn::crypto {

void SpeckCtr::crypt(std::uint64_t counter,
                     std::span<std::uint8_t> data) const {
  WMSN_PROFILE_PHASE(kCrypto);
  // Keystream block i = E_K(x = low32(counter) ^ i*golden, y = high32 ^ i).
  // Mixing the block index into both words keeps blocks of one message
  // distinct while the per-message counter keeps messages distinct.
  for (std::size_t offset = 0, block = 0; offset < data.size();
       offset += Speck64::kBlockSize, ++block) {
    const std::uint32_t x =
        static_cast<std::uint32_t>(counter) ^
        static_cast<std::uint32_t>(block * 0x9e3779b9ULL);
    const std::uint32_t y = static_cast<std::uint32_t>(counter >> 32) ^
                            static_cast<std::uint32_t>(block);
    auto [ex, ey] = cipher_.encryptWords(x, y);
    const std::uint8_t stream[Speck64::kBlockSize] = {
        static_cast<std::uint8_t>(ey),       static_cast<std::uint8_t>(ey >> 8),
        static_cast<std::uint8_t>(ey >> 16), static_cast<std::uint8_t>(ey >> 24),
        static_cast<std::uint8_t>(ex),       static_cast<std::uint8_t>(ex >> 8),
        static_cast<std::uint8_t>(ex >> 16), static_cast<std::uint8_t>(ex >> 24),
    };
    const std::size_t n =
        std::min(data.size() - offset, Speck64::kBlockSize);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= stream[i];
  }
}

Bytes SpeckCtr::encrypt(std::uint64_t counter,
                        std::span<const std::uint8_t> plaintext) const {
  Bytes out(plaintext.begin(), plaintext.end());
  crypt(counter, out);
  return out;
}

}  // namespace wmsn::crypto
