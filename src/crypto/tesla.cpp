#include "crypto/tesla.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace wmsn::crypto {

TeslaChain::TeslaChain(const Key& seed, std::size_t length) {
  WMSN_REQUIRE(length >= 2);
  keys_.resize(length);
  keys_.back() = seed;
  for (std::size_t i = length - 1; i > 0; --i)
    keys_[i - 1] = step(keys_[i]);
}

Key TeslaChain::step(const Key& next) {
  ByteWriter w;
  w.str("tesla-chain");
  w.raw(std::span<const std::uint8_t>(next.data(), next.size()));
  const auto digest = Sha256::hash(w.data());
  Key out;
  std::copy_n(digest.begin(), out.size(), out.begin());
  return out;
}

Key TeslaChain::macKey(const Key& chainKey) {
  ByteWriter w;
  w.str("tesla-mac");
  const auto digest = HmacSha256::mac(chainKey, w.data());
  Key out;
  std::copy_n(digest.begin(), out.size(), out.begin());
  return out;
}

const Key& TeslaChain::key(std::size_t interval) const {
  WMSN_REQUIRE_MSG(interval < keys_.size(), "TESLA chain exhausted");
  return keys_[interval];
}

TeslaBroadcaster::TeslaBroadcaster(const Key& seed, TeslaParams params)
    : chain_(seed, params.chainLength), params_(params) {
  WMSN_REQUIRE(params.intervalDuration.us > 0);
  WMSN_REQUIRE(params.disclosureDelay >= 1);
}

std::uint32_t TeslaBroadcaster::intervalAt(sim::Time now) const {
  WMSN_REQUIRE(now >= params_.startTime);
  return static_cast<std::uint32_t>((now - params_.startTime).us /
                                    params_.intervalDuration.us);
}

TeslaAuthenticatedMessage TeslaBroadcaster::sign(const Bytes& payload,
                                                 sim::Time now) const {
  const std::uint32_t interval = intervalAt(now);
  // Interval 0's key is the commitment itself (public), so usable intervals
  // start at 1.
  WMSN_REQUIRE_MSG(interval >= 1, "TESLA interval 0 key is public");
  const Key mk = TeslaChain::macKey(chain_.key(interval));
  TeslaAuthenticatedMessage msg;
  msg.payload = payload;
  msg.interval = interval;
  msg.mac = packetMac(mk, interval, payload);
  return msg;
}

std::optional<std::pair<std::uint32_t, Key>> TeslaBroadcaster::disclosableKey(
    sim::Time now) const {
  const std::uint32_t interval = intervalAt(now);
  if (interval < params_.disclosureDelay) return std::nullopt;
  const std::uint32_t disclosed = interval - params_.disclosureDelay;
  if (disclosed < 1) return std::nullopt;
  return std::make_pair(disclosed, chain_.key(disclosed));
}

TeslaReceiver::TeslaReceiver(const Key& commitment, TeslaParams params)
    : lastVerifiedKey_(commitment), params_(params) {}

std::uint32_t TeslaReceiver::intervalAt(sim::Time now) const {
  WMSN_REQUIRE(now >= params_.startTime);
  return static_cast<std::uint32_t>((now - params_.startTime).us /
                                    params_.intervalDuration.us);
}

TeslaReceiver::Accept TeslaReceiver::onMessage(
    const TeslaAuthenticatedMessage& msg, sim::Time arrival) {
  if (msg.interval <= verifiedInterval_) return Accept::kStaleInterval;
  // Security condition: the sender may disclose K_i starting in interval
  // i + d. If the message arrives at or after that point an adversary could
  // already know the key, so the MAC proves nothing.
  const std::uint32_t arrivalInterval = intervalAt(arrival);
  if (arrivalInterval >= msg.interval + params_.disclosureDelay)
    return Accept::kUnsafe;
  buffer_.push_back(msg);
  return Accept::kBuffered;
}

std::optional<std::vector<Bytes>> TeslaReceiver::onKeyDisclosure(
    std::uint32_t interval, const Key& key) {
  if (interval <= verifiedInterval_) return std::nullopt;
  // Verify the disclosed key by hashing it back to the last verified key.
  Key walked = key;
  for (std::uint32_t i = interval; i > verifiedInterval_; --i)
    walked = TeslaChain::step(walked);
  if (!constantTimeEqual(
          std::span<const std::uint8_t>(walked.data(), walked.size()),
          std::span<const std::uint8_t>(lastVerifiedKey_.data(),
                                        lastVerifiedKey_.size())))
    return std::nullopt;

  const Key mk = TeslaChain::macKey(key);
  std::vector<Bytes> released;
  std::vector<TeslaAuthenticatedMessage> keep;
  for (auto& msg : buffer_) {
    if (msg.interval == interval) {
      if (verifyPacketMac(mk, msg.interval, msg.payload, msg.mac))
        released.push_back(std::move(msg.payload));
      // else: forged — drop silently
    } else if (msg.interval > interval) {
      keep.push_back(std::move(msg));
    }
    // msg.interval < interval: its key was skipped — undeliverable, drop.
  }
  buffer_ = std::move(keep);
  lastVerifiedKey_ = key;
  verifiedInterval_ = interval;
  return released;
}

}  // namespace wmsn::crypto
