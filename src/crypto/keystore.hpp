#pragma once

#include <cstdint>
#include <unordered_map>

#include "crypto/hmac.hpp"

namespace wmsn::crypto {

/// Pre-distribution key store. SecMLR assumes "each sensor node [is]
/// pre-distributed secret keys, each shared with a gateway" (§6.2). We model
/// the deployment-time key server: every pairwise key is derived from a
/// network master key as K_ij = KDF(master, sensor_i || gateway_j), so a
/// sensor only ever holds its own m keys and a gateway can re-derive the key
/// of any claimed sender — exactly what lets a gateway authenticate RREQ
/// origins without per-node state.
class KeyStore {
 public:
  explicit KeyStore(const Key& masterKey) : master_(masterKey) {}

  /// Deterministic master from a seed (tests / simulations).
  static KeyStore fromSeed(std::uint64_t seed);

  /// The pairwise key shared between sensor `sensorId` and gateway
  /// `gatewayId`.
  Key pairwiseKey(std::uint32_t sensorId, std::uint32_t gatewayId) const;

  /// Key for TESLA chain generation of gateway `gatewayId`.
  Key broadcastSeedKey(std::uint32_t gatewayId) const;

 private:
  Key derive(const char* label, std::uint32_t a, std::uint32_t b) const;
  Key master_;
};

/// Per-direction replay window: accepts a counter only if strictly greater
/// than the last accepted one (SecMLR's "incremental counter C").
class CounterWindow {
 public:
  /// Returns true (and advances) iff `counter` is fresh.
  bool acceptAndAdvance(std::uint64_t counter);
  std::uint64_t last() const { return last_; }

 private:
  std::uint64_t last_ = 0;  // counters start at 1; 0 = nothing seen
};

/// Monotonic counter source for a sender.
class CounterSource {
 public:
  std::uint64_t next() { return ++value_; }
  std::uint64_t current() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace wmsn::crypto
