#pragma once

#include <array>
#include <cstdint>

#include "crypto/hmac.hpp"

namespace wmsn::crypto {

/// Speck64/128 block cipher (Beaulieu et al., NSA 2013): 64-bit block,
/// 128-bit key, 27 rounds. Chosen as the packet cipher because it is the
/// canonical lightweight cipher for exactly the sensor-node class of hardware
/// the paper targets — tiny code size, ARX-only operations.
class Speck64 {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr int kRounds = 27;
  using Block = std::array<std::uint8_t, kBlockSize>;

  explicit Speck64(const Key& key);

  Block encrypt(const Block& plaintext) const;
  Block decrypt(const Block& ciphertext) const;

  /// Word-level primitives exposed for the CTR keystream generator.
  std::pair<std::uint32_t, std::uint32_t> encryptWords(std::uint32_t x,
                                                       std::uint32_t y) const;

 private:
  std::array<std::uint32_t, kRounds> roundKeys_{};
};

}  // namespace wmsn::crypto
