#pragma once

#include <cstdint>
#include <span>

#include "crypto/speck.hpp"
#include "util/bytes.hpp"

namespace wmsn::crypto {

/// CTR-mode encryption over Speck64/128, parameterised by the SecMLR
/// freshness counter C: the keystream for message counter C is
/// E_K(C || blockIndex). Encryption and decryption are the same operation.
/// The counter doubles as the SNEP-style nonce — the sender and receiver
/// track it per (node, gateway) pair, so it never repeats under one key.
class SpeckCtr {
 public:
  explicit SpeckCtr(const Key& key) : cipher_(key) {}

  /// XORs the keystream for `counter` into `data` (in place).
  void crypt(std::uint64_t counter, std::span<std::uint8_t> data) const;

  /// Out-of-place convenience.
  Bytes encrypt(std::uint64_t counter,
                std::span<const std::uint8_t> plaintext) const;
  Bytes decrypt(std::uint64_t counter,
                std::span<const std::uint8_t> ciphertext) const {
    return encrypt(counter, ciphertext);  // CTR is an involution
  }

 private:
  Speck64 cipher_;
};

}  // namespace wmsn::crypto
