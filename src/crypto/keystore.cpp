#include "crypto/keystore.hpp"

#include <algorithm>
#include <cstring>

namespace wmsn::crypto {

KeyStore KeyStore::fromSeed(std::uint64_t seed) {
  ByteWriter w;
  w.str("wmsn-master-key");
  w.u64(seed);
  const auto digest = Sha256::hash(w.data());
  Key master;
  std::copy_n(digest.begin(), master.size(), master.begin());
  return KeyStore(master);
}

Key KeyStore::derive(const char* label, std::uint32_t a,
                     std::uint32_t b) const {
  ByteWriter w;
  w.str(label);
  w.u32(a);
  w.u32(b);
  const auto digest = HmacSha256::mac(master_, w.data());
  Key key;
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

Key KeyStore::pairwiseKey(std::uint32_t sensorId,
                          std::uint32_t gatewayId) const {
  return derive("pairwise", sensorId, gatewayId);
}

Key KeyStore::broadcastSeedKey(std::uint32_t gatewayId) const {
  return derive("tesla-seed", gatewayId, 0);
}

bool CounterWindow::acceptAndAdvance(std::uint64_t counter) {
  if (counter <= last_) return false;
  last_ = counter;
  return true;
}

}  // namespace wmsn::crypto
