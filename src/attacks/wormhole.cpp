#include "attacks/wormhole.hpp"

#include "util/require.hpp"

namespace wmsn::attacks {

WormholeTunnel::WormholeTunnel(net::SensorNetwork& network,
                               net::NodeId endpointA, net::NodeId endpointB,
                               bool dropData)
    : network_(network), a_(endpointA), b_(endpointB), dropData_(dropData) {
  WMSN_REQUIRE(endpointA != endpointB);
}

net::NodeId WormholeTunnel::peerOf(net::NodeId endpoint) const {
  WMSN_REQUIRE(endpoint == a_ || endpoint == b_);
  return endpoint == a_ ? b_ : a_;
}

bool WormholeTunnel::offer(net::NodeId hearingEndpoint,
                           const net::Packet& packet) {
  // Never tunnel what the tunnel itself emitted (loop guard), and only
  // tunnel each frame once.
  if (packet.hopSrc == a_ || packet.hopSrc == b_) return false;
  if (packet.uid != 0 && !tunnelled_.insert(packet.uid).second) return false;

  if (dropData_ && packet.kind == net::PacketKind::kData) {
    // Control traffic tunnels through (building the lure); data attracted
    // across the fabricated adjacency is silently discarded.
    if (packet.hopDst == hearingEndpoint ||
        packet.hopDst == net::kBroadcastId) {
      // Broadcast data still re-emits below to keep the lure credible for
      // flooding protocols; unicast data addressed to an endpoint dies.
      if (packet.hopDst == hearingEndpoint) {
        ++stats_.framesDropped;
        return true;
      }
    }
  }

  const net::NodeId far = peerOf(hearingEndpoint);
  if (!network_.node(far).alive()) return false;
  net::Packet copy = packet;
  ++stats_.framesTunnelled;
  network_.sendFrom(far, std::move(copy));
  return false;
}

}  // namespace wmsn::attacks
