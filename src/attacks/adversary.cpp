#include "attacks/adversary.hpp"

#include "attacks/attacks.hpp"
#include "attacks/wormhole.hpp"
#include "util/require.hpp"

namespace wmsn::attacks {

const char* toString(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kReplay: return "replay";
    case AttackKind::kSpoofMove: return "spoofed-routing-info";
    case AttackKind::kSelectiveForward: return "selective-forwarding";
    case AttackKind::kSinkhole: return "sinkhole";
    case AttackKind::kHelloFlood: return "hello-flood";
    case AttackKind::kSybil: return "sybil";
    case AttackKind::kWormhole: return "wormhole";
    case AttackKind::kAckSpoof: return "ack-spoofing";
  }
  return "unknown";
}

namespace {

/// Attacks whose device model is a mains-powered laptop rather than a
/// captured mote (Karlof–Wagner's outsider-class adversary).
bool laptopClass(AttackKind kind) {
  return kind == AttackKind::kHelloFlood || kind == AttackKind::kWormhole ||
         kind == AttackKind::kReplay;
}

bool needsPromiscuous(AttackKind kind) {
  return kind == AttackKind::kReplay || kind == AttackKind::kWormhole ||
         kind == AttackKind::kAckSpoof;
}

template <class Base, class... BaseArgs>
std::unique_ptr<routing::RoutingProtocol> makeOne(
    const AttackPlan& plan, std::shared_ptr<WormholeTunnel> tunnel,
    BaseArgs&&... baseArgs) {
  switch (plan.kind) {
    case AttackKind::kReplay:
      return std::make_unique<ReplayAttacker<Base>>(
          plan.replayDelay, plan.replayCopies,
          std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kSpoofMove:
      return std::make_unique<MoveSpoofer<Base>>(
          std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kSelectiveForward:
      return std::make_unique<SelectiveForwarder<Base>>(
          plan.dropProbability, std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kSinkhole:
      return std::make_unique<SinkholeAttacker<Base>>(
          std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kHelloFlood:
      return std::make_unique<HelloFlooder<Base>>(
          std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kSybil:
      return std::make_unique<SybilAttacker<Base>>(
          plan.fakeIdentities, std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kWormhole:
      return std::make_unique<WormholeEndpoint<Base>>(
          std::move(tunnel), std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kAckSpoof:
      return std::make_unique<AckSpoofAttacker<Base>>(
          std::forward<BaseArgs>(baseArgs)...);
    case AttackKind::kNone:
      break;
  }
  throw PreconditionError("no attacker for AttackKind::kNone");
}

}  // namespace

void installAttack(routing::ProtocolStack& stack, net::SensorNetwork& network,
                   const AttackPlan& plan, VictimProtocol victim,
                   const routing::MlrParams& mlrParams,
                   const routing::SecMlrConfig& secConfig) {
  if (plan.kind == AttackKind::kNone || plan.attackers.empty()) return;
  if (plan.kind == AttackKind::kWormhole)
    WMSN_REQUIRE_MSG(plan.attackers.size() == 2,
                     "a wormhole needs exactly two endpoints");

  std::shared_ptr<WormholeTunnel> tunnel;
  if (plan.kind == AttackKind::kWormhole)
    tunnel = std::make_shared<WormholeTunnel>(
        network, plan.attackers[0], plan.attackers[1], plan.tunnelDropsData);

  for (net::NodeId id : plan.attackers) {
    WMSN_REQUIRE_MSG(!network.node(id).isGateway(),
                     "gateways are trusted (§6.2); compromise sensors");

    std::unique_ptr<routing::RoutingProtocol> attacker;
    if (victim == VictimProtocol::kMlr) {
      attacker = makeOne<routing::MlrRouting>(
          plan, tunnel, network, id, stack.knowledge(), mlrParams);
    } else {
      attacker = makeOne<routing::SecMlrRouting>(
          plan, tunnel, network, id, stack.knowledge(), secConfig, mlrParams);
    }
    stack.replace(id, std::move(attacker));

    if (needsPromiscuous(plan.kind))
      network.medium().setPromiscuous(id, true);
    if (laptopClass(plan.kind))
      network.node(id).battery() = net::Battery::infinite();
  }
}

AttackerStats collectAttackerStats(routing::ProtocolStack& stack,
                                   const AttackPlan& plan) {
  AttackerStats total;
  for (net::NodeId id : plan.attackers) {
    if (auto* introspect =
            dynamic_cast<const AttackerIntrospection*>(&stack.at(id)))
      total += introspect->attackerStats();
  }
  // Wormhole endpoints share one tunnel stats object — avoid double count.
  if (plan.kind == AttackKind::kWormhole && plan.attackers.size() == 2) {
    total = AttackerStats{};
    if (auto* introspect =
            dynamic_cast<const AttackerIntrospection*>(&stack.at(
                plan.attackers[0])))
      total = introspect->attackerStats();
  }
  return total;
}

}  // namespace wmsn::attacks
