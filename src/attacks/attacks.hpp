#pragma once

#include <algorithm>
#include <deque>
#include <type_traits>

#include "attacks/adversary.hpp"
#include "util/require.hpp"

namespace wmsn::attacks {

/// Compromised insiders are honest protocol stacks (Base = MlrRouting or
/// SecMlrRouting) with malicious overrides — they blend into the network,
/// which is exactly the node-capture threat model of §6.1.

// ---------------------------------------------------------------------------
// Selective forwarding ("grey hole")
// ---------------------------------------------------------------------------

template <class Base>
class SelectiveForwarder final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  SelectiveForwarder(double dropProbability, Args&&... args)
      : Base(std::forward<Args>(args)...), dropProbability_(dropProbability) {}

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    // wmsn:fixed-draws — the drop draw is gated only on packet fields,
    // which are pure simulation state: a replay sees the same packets in
    // the same order, so the attacker's stream stays aligned.
    if (packet.kind == net::PacketKind::kData &&
        packet.hopDst == this->self() &&
        this->rng().chance(dropProbability_)) {
      ++stats_.framesDropped;  // participates in routing, swallows data
      return;
    }
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  double dropProbability_;
  AttackerStats stats_;
};

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

template <class Base>
class ReplayAttacker final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  ReplayAttacker(sim::Time replayDelay, std::size_t copies, Args&&... args)
      : Base(std::forward<Args>(args)...),
        replayDelay_(replayDelay),
        copies_(copies) {}

  void start() override {
    Base::start();
    scheduleReplay();
  }

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    // Promiscuous capture of any data frame in range.
    if (packet.kind == net::PacketKind::kData && packet.hopSrc != this->self()) {
      if (captured_.size() >= kCaptureLimit) captured_.pop_front();
      captured_.push_back(packet);
    }
    // Frames not addressed to us were only eavesdropped.
    if (packet.hopDst != net::kBroadcastId && packet.hopDst != this->self())
      return;
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  static constexpr std::size_t kCaptureLimit = 128;

  void scheduleReplay() {
    this->scheduleAfter(replayDelay_, [this] {
      if (!captured_.empty()) {
        for (std::size_t i = 0; i < copies_; ++i) {
          net::Packet copy =
              captured_[this->rng().index(captured_.size())];
          // Re-inject verbatim: same uid, same counter, same MAC — exactly
          // what a replay looks like on the air.
          copy.hopSrc = this->self();
          this->network().sendFrom(this->self(), std::move(copy));
          ++stats_.framesReplayed;
        }
      }
      scheduleReplay();
    });
  }

  sim::Time replayDelay_;
  std::size_t copies_;
  std::deque<net::Packet> captured_;
  AttackerStats stats_;
};

// ---------------------------------------------------------------------------
// Spoofed routing information (forged gateway-move notifications)
// ---------------------------------------------------------------------------

template <class Base>
class MoveSpoofer final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  explicit MoveSpoofer(Args&&... args) : Base(std::forward<Args>(args)...) {}

  void onRoundStart(std::uint32_t round) override {
    Base::onRoundStart(round);
    // Give honest floods a moment to establish the real occupancy first.
    this->scheduleAfter(sim::Time::seconds(0.5),
                        [this, round] { forge(round); });
  }

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    if (packet.kind == net::PacketKind::kData &&
        packet.hopDst == this->self()) {
      ++stats_.framesDropped;  // traffic attracted by the forgery dies here
      return;
    }
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  void forge(std::uint32_t round) {
    if (this->occupancy().empty()) return;
    const auto [realPlace, gateway] = *this->occupancy().begin();
    // Claim the gateway moved to a free place "next to" the attacker: the
    // forged flood rebuilds the BFS field with the attacker at its root.
    std::uint16_t bogus = 0;
    for (std::size_t p = 0; p < this->knowledge().feasiblePlaces.size(); ++p) {
      if (!this->occupancy().contains(static_cast<std::uint16_t>(p))) {
        bogus = static_cast<std::uint16_t>(p);
        break;
      }
    }
    routing::GatewayMoveMsg msg;
    msg.gateway = gateway;
    msg.newPlace = bogus;
    msg.prevPlace = realPlace;
    msg.round = round;
    msg.hopCount = 0;

    if constexpr (std::is_same_v<Base, routing::SecMlrRouting>) {
      // Against SecMLR the spoofer cannot produce a valid TESLA MAC — it
      // sends a forged SecMoveMsg with a random tag and hopes nobody checks.
      routing::SecMoveMsg wire;
      wire.gateway = gateway;
      wire.teslaPayload = msg.encode();
      wire.interval = currentInterval();
      for (auto& b : wire.mac)
        b = static_cast<std::uint8_t>(this->rng().next());
      wire.hopCount = 0;
      this->sendBroadcast(this->makePacket(net::PacketKind::kGatewayMove,
                                           net::kBroadcastId, wire.encode()));
    } else {
      this->sendBroadcast(this->makePacket(net::PacketKind::kGatewayMove,
                                           net::kBroadcastId, msg.encode()));
    }
    ++stats_.framesForged;
  }

  std::uint32_t currentInterval() const {
    return static_cast<std::uint32_t>(this->now().us / 1'000'000) + 1;
  }

  AttackerStats stats_;
};

// ---------------------------------------------------------------------------
// Sinkhole
// ---------------------------------------------------------------------------

template <class Base>
class SinkholeAttacker final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  explicit SinkholeAttacker(Args&&... args)
      : Base(std::forward<Args>(args)...) {}

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    switch (packet.kind) {
      case net::PacketKind::kGatewayMove: {
        // Re-advertise the flood claiming zero distance to the place — the
        // classic sinkhole lure. (Works on SecMLR's flood too: the hop
        // counter is mutable metadata outside the TESLA MAC.)
        net::Packet lure = packet;
        if constexpr (std::is_same_v<Base, routing::SecMlrRouting>) {
          auto msg = routing::SecMoveMsg::decode(packet.payload);
          msg.hopCount = 0;
          lure.payload = msg.encode();
        } else {
          auto msg = routing::GatewayMoveMsg::decode(packet.payload);
          msg.hopCount = 0;
          lure.payload = msg.encode();
        }
        ++stats_.framesForged;
        this->sendBroadcast(std::move(lure));
        // Also process honestly so the attacker keeps a plausible table.
        Base::onReceive(packet, from);
        return;
      }
      case net::PacketKind::kRreq: {
        if constexpr (std::is_same_v<Base, routing::SecMlrRouting>) {
          // Truncate the accumulated path: claim the source is one hop
          // away. The gateway will prefer this "short" path — but the
          // response then has to traverse the fabricated adjacency, which
          // usually does not physically exist.
          try {
            auto msg = routing::SecRreqMsg::decode(packet.payload);
            if (msg.source != this->self() &&
                std::find(msg.path.begin(), msg.path.end(),
                          static_cast<std::uint16_t>(this->self())) ==
                    msg.path.end()) {
              msg.path.assign({msg.source,
                               static_cast<std::uint16_t>(this->self())});
              ++stats_.framesForged;
              this->sendBroadcast(this->makePacket(
                  net::PacketKind::kRreq, net::kBroadcastId, msg.encode()));
              return;
            }
          } catch (const PreconditionError&) {
          }
        }
        Base::onReceive(packet, from);
        return;
      }
      case net::PacketKind::kData:
        if (packet.hopDst == this->self()) {
          ++stats_.framesDropped;  // the sinkhole swallows what it attracts
          return;
        }
        Base::onReceive(packet, from);
        return;
      default:
        Base::onReceive(packet, from);
        return;
    }
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  AttackerStats stats_;
};

// ---------------------------------------------------------------------------
// HELLO flood (laptop-class long-range transmitter)
// ---------------------------------------------------------------------------

template <class Base>
class HelloFlooder final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  explicit HelloFlooder(Args&&... args) : Base(std::forward<Args>(args)...) {}

  void onRoundStart(std::uint32_t round) override {
    Base::onRoundStart(round);
    this->scheduleAfter(sim::Time::seconds(0.6),
                        [this, round] { flood(round); });
  }

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    if (packet.kind == net::PacketKind::kData &&
        packet.hopDst == this->self()) {
      ++stats_.framesDropped;
      return;
    }
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  void flood(std::uint32_t round) {
    // For every occupied place, blast a hop-count-0 notification to every
    // sensor in the network with the high-power radio: distant victims
    // adopt the attacker as next hop, but their own low-power replies can
    // never reach it — data vanishes into the asymmetric link.
    for (const auto& [place, gateway] : this->occupancy()) {
      routing::GatewayMoveMsg msg;
      msg.gateway = gateway;
      msg.newPlace = place;
      msg.prevPlace = routing::kNoPlace;
      msg.round = round;
      msg.hopCount = 0;

      net::Packet pkt;
      if constexpr (std::is_same_v<Base, routing::SecMlrRouting>) {
        routing::SecMoveMsg wire;
        wire.gateway = gateway;
        wire.teslaPayload = msg.encode();
        wire.interval =
            static_cast<std::uint32_t>(this->now().us / 1'000'000) + 1;
        for (auto& b : wire.mac)
          b = static_cast<std::uint8_t>(this->rng().next());
        wire.hopCount = 0;
        pkt = this->makePacket(net::PacketKind::kGatewayMove,
                               net::kBroadcastId, wire.encode());
      } else {
        pkt = this->makePacket(net::PacketKind::kGatewayMove,
                               net::kBroadcastId, msg.encode());
      }

      for (net::NodeId target : this->network().sensorIds()) {
        if (target == this->self() || !this->network().node(target).alive())
          continue;
        net::Packet copy = pkt;
        copy.uid = 0;  // fresh uid per long-haul frame
        this->network().sendLongRangeFrom(this->self(), target,
                                          std::move(copy));
        ++stats_.framesForged;
      }
    }
  }

  AttackerStats stats_;
};

// ---------------------------------------------------------------------------
// Sybil (fake gateway identities)
// ---------------------------------------------------------------------------

template <class Base>
class SybilAttacker final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  SybilAttacker(std::uint32_t fakeIdentities, Args&&... args)
      : Base(std::forward<Args>(args)...), fakeIdentities_(fakeIdentities) {}

  void onRoundStart(std::uint32_t round) override {
    Base::onRoundStart(round);
    this->scheduleAfter(sim::Time::seconds(0.7),
                        [this, round] { fabricate(round); });
  }

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    if (packet.kind == net::PacketKind::kData &&
        packet.hopDst == this->self()) {
      ++stats_.framesDropped;
      return;
    }
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  void fabricate(std::uint32_t round) {
    // Claim `fakeIdentities_` brand-new gateways, each occupying a free
    // feasible place, each zero hops from the attacker. MLR victims add
    // them as routing candidates; SecMLR victims find no TESLA commitment
    // for the unknown ids and reject.
    std::uint32_t made = 0;
    for (std::size_t p = 0;
         p < this->knowledge().feasiblePlaces.size() &&
         made < fakeIdentities_;
         ++p) {
      const auto place = static_cast<std::uint16_t>(p);
      if (this->occupancy().contains(place)) continue;
      routing::GatewayMoveMsg msg;
      msg.gateway = static_cast<std::uint16_t>(0x8000 + made);  // fake id
      msg.newPlace = place;
      msg.prevPlace = routing::kNoPlace;
      msg.round = round;
      msg.hopCount = 0;
      ++made;
      ++stats_.framesForged;

      if constexpr (std::is_same_v<Base, routing::SecMlrRouting>) {
        routing::SecMoveMsg wire;
        wire.gateway = msg.gateway;
        wire.teslaPayload = msg.encode();
        wire.interval =
            static_cast<std::uint32_t>(this->now().us / 1'000'000) + 1;
        for (auto& b : wire.mac)
          b = static_cast<std::uint8_t>(this->rng().next());
        wire.hopCount = 0;
        this->sendBroadcast(this->makePacket(net::PacketKind::kGatewayMove,
                                             net::kBroadcastId,
                                             wire.encode()));
      } else {
        this->sendBroadcast(this->makePacket(net::PacketKind::kGatewayMove,
                                             net::kBroadcastId,
                                             msg.encode()));
      }
    }
  }

  std::uint32_t fakeIdentities_;
  AttackerStats stats_;
};

// ---------------------------------------------------------------------------
// ACK spoofing
// ---------------------------------------------------------------------------

template <class Base>
class AckSpoofAttacker final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  explicit AckSpoofAttacker(Args&&... args)
      : Base(std::forward<Args>(args)...) {}

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    // Overhears (promiscuous) data sent to a node that is dead and forges
    // the link-layer ACK on its behalf — the sender keeps believing in the
    // dead route instead of invalidating it (§2.3 "acknowledgment
    // spoofing"; needs MLR's reliable-forwarding mode to matter).
    if (packet.kind == net::PacketKind::kData &&
        packet.hopDst != net::kBroadcastId &&
        packet.hopDst != this->self() &&
        packet.hopDst < this->network().size() &&
        !this->network().node(packet.hopDst).alive()) {
      routing::AckMsg ack;
      ack.uid = packet.uid;
      ++stats_.framesForged;
      this->sendUnicast(packet.hopSrc,
                        this->makePacket(net::PacketKind::kAck, packet.hopSrc,
                                         ack.encode()));
      return;
    }
    if (packet.hopDst != net::kBroadcastId && packet.hopDst != this->self())
      return;  // other promiscuous traffic: just eavesdropping
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return stats_; }

 private:
  AttackerStats stats_;
};

}  // namespace wmsn::attacks
