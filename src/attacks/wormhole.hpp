#pragma once

#include <memory>
#include <unordered_set>

#include "attacks/adversary.hpp"

namespace wmsn::attacks {

/// The colluders' out-of-band channel. Frames heard at one endpoint are
/// re-emitted verbatim at the other, fabricating a one-hop adjacency across
/// the network — routing floods tunnel through and pull traffic toward the
/// endpoints. The tunnel itself is modelled as free (a wired/directional
/// link invisible to the sensor medium); re-emission pays normal radio cost
/// at the far endpoint.
class WormholeTunnel {
 public:
  WormholeTunnel(net::SensorNetwork& network, net::NodeId endpointA,
                 net::NodeId endpointB, bool dropData);

  net::NodeId peerOf(net::NodeId endpoint) const;

  /// Called by an endpoint that overheard `packet`. Returns true if the
  /// frame was swallowed by the tunnel's data-drop policy (the caller must
  /// not process it further).
  bool offer(net::NodeId hearingEndpoint, const net::Packet& packet);

  const AttackerStats& stats() const { return stats_; }

 private:
  net::SensorNetwork& network_;
  net::NodeId a_;
  net::NodeId b_;
  bool dropData_;
  std::unordered_set<std::uint64_t> tunnelled_;  ///< uid dedupe (loop guard)
  AttackerStats stats_;
};

template <class Base>
class WormholeEndpoint final : public Base, public AttackerIntrospection {
 public:
  template <class... Args>
  WormholeEndpoint(std::shared_ptr<WormholeTunnel> tunnel, Args&&... args)
      : Base(std::forward<Args>(args)...), tunnel_(std::move(tunnel)) {}

  void onReceive(const net::Packet& packet, net::NodeId from) override {
    if (tunnel_->offer(this->self(), packet)) return;  // swallowed
    if (packet.hopDst != net::kBroadcastId && packet.hopDst != this->self())
      return;  // promiscuous eavesdrop only
    Base::onReceive(packet, from);
  }

  AttackerStats attackerStats() const override { return tunnel_->stats(); }

 private:
  std::shared_ptr<WormholeTunnel> tunnel_;
};

}  // namespace wmsn::attacks
