#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/mlr.hpp"
#include "routing/secmlr.hpp"

namespace wmsn::attacks {

/// The Karlof–Wagner attack catalogue the paper cites (§2.3, §6):
/// "spoofed, altered, or replayed routing information, selective forwarding,
/// sinkhole, sybil, wormholes, hello flood attacks, acknowledgment spoofing".
enum class AttackKind : std::uint8_t {
  kNone,
  kReplay,            ///< re-inject captured data/control frames
  kSpoofMove,         ///< forge gateway place notifications
  kSelectiveForward,  ///< grey hole: route honestly, drop data w.p. p
  kSinkhole,          ///< advertise hop-count 0, attract and drop traffic
  kHelloFlood,        ///< laptop-class long-range bogus advertisements
  kSybil,             ///< fabricate multiple fake gateway identities
  kWormhole,          ///< out-of-band tunnel between two endpoints
  kAckSpoof,          ///< forge link-layer ACKs for a dead next hop
};

const char* toString(AttackKind kind);

/// Which honest protocol the compromised nodes masquerade as.
enum class VictimProtocol : std::uint8_t { kMlr, kSecMlr };

struct AttackPlan {
  AttackKind kind = AttackKind::kNone;
  std::vector<net::NodeId> attackers;
  double dropProbability = 1.0;      ///< selective forwarding / sinkhole
  std::uint32_t fakeIdentities = 3;  ///< sybil
  sim::Time replayDelay = sim::Time::seconds(1.0);
  std::size_t replayCopies = 4;
  /// Wormhole: attackers[0] and attackers[1] are the endpoints.
  bool tunnelDropsData = true;
};

/// Counters every attacker exposes so benches can report attacker activity
/// alongside victim-side damage.
struct AttackerStats {
  std::uint64_t framesDropped = 0;
  std::uint64_t framesForged = 0;
  std::uint64_t framesReplayed = 0;
  std::uint64_t framesTunnelled = 0;

  AttackerStats& operator+=(const AttackerStats& other) {
    framesDropped += other.framesDropped;
    framesForged += other.framesForged;
    framesReplayed += other.framesReplayed;
    framesTunnelled += other.framesTunnelled;
    return *this;
  }
};

class AttackerIntrospection {
 public:
  virtual ~AttackerIntrospection() = default;
  virtual AttackerStats attackerStats() const = 0;
};

/// Replaces the protocol instances of `plan.attackers` in `stack` with
/// compromised stacks implementing `plan.kind` against `victim`-protocol
/// networks. Attacker radios are switched to promiscuous mode and — for the
/// laptop-class attacks (hello flood, wormhole, replay) — their batteries are
/// upgraded to mains power, per the standard outsider-device threat model.
///
/// `mlrParams`/`secConfig` must match the honest nodes' configuration so the
/// insiders blend in.
void installAttack(routing::ProtocolStack& stack, net::SensorNetwork& network,
                   const AttackPlan& plan, VictimProtocol victim,
                   const routing::MlrParams& mlrParams,
                   const routing::SecMlrConfig& secConfig);

/// Sums attacker counters over the installed attackers.
AttackerStats collectAttackerStats(routing::ProtocolStack& stack,
                                   const AttackPlan& plan);

}  // namespace wmsn::attacks
