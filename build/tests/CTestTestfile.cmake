# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_secmlr[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_baselines2[1]_include.cmake")
include("/root/repo/build/tests/test_flat_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_viz_trace[1]_include.cmake")
