# Empty compiler generated dependencies file for test_flat_baselines.
# This may be replaced when dependencies are built.
