file(REMOVE_RECURSE
  "CMakeFiles/test_flat_baselines.dir/flat_baselines_test.cpp.o"
  "CMakeFiles/test_flat_baselines.dir/flat_baselines_test.cpp.o.d"
  "test_flat_baselines"
  "test_flat_baselines.pdb"
  "test_flat_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
