# Empty compiler generated dependencies file for test_secmlr.
# This may be replaced when dependencies are built.
