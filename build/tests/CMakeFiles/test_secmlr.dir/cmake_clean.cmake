file(REMOVE_RECURSE
  "CMakeFiles/test_secmlr.dir/secmlr_test.cpp.o"
  "CMakeFiles/test_secmlr.dir/secmlr_test.cpp.o.d"
  "test_secmlr"
  "test_secmlr.pdb"
  "test_secmlr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secmlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
