file(REMOVE_RECURSE
  "CMakeFiles/test_baselines2.dir/baselines2_test.cpp.o"
  "CMakeFiles/test_baselines2.dir/baselines2_test.cpp.o.d"
  "test_baselines2"
  "test_baselines2.pdb"
  "test_baselines2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
