# Empty dependencies file for test_baselines2.
# This may be replaced when dependencies are built.
