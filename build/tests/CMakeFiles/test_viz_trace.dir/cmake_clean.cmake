file(REMOVE_RECURSE
  "CMakeFiles/test_viz_trace.dir/viz_trace_test.cpp.o"
  "CMakeFiles/test_viz_trace.dir/viz_trace_test.cpp.o.d"
  "test_viz_trace"
  "test_viz_trace.pdb"
  "test_viz_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_viz_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
