file(REMOVE_RECURSE
  "CMakeFiles/bench_reactive.dir/bench_reactive.cpp.o"
  "CMakeFiles/bench_reactive.dir/bench_reactive.cpp.o.d"
  "bench_reactive"
  "bench_reactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
