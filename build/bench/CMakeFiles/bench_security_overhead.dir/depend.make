# Empty dependencies file for bench_security_overhead.
# This may be replaced when dependencies are built.
