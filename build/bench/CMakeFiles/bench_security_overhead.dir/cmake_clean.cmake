file(REMOVE_RECURSE
  "CMakeFiles/bench_security_overhead.dir/bench_security_overhead.cpp.o"
  "CMakeFiles/bench_security_overhead.dir/bench_security_overhead.cpp.o.d"
  "bench_security_overhead"
  "bench_security_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
