file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_resistance.dir/bench_attack_resistance.cpp.o"
  "CMakeFiles/bench_attack_resistance.dir/bench_attack_resistance.cpp.o.d"
  "bench_attack_resistance"
  "bench_attack_resistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
