file(REMOVE_RECURSE
  "CMakeFiles/bench_gateway_scaling.dir/bench_gateway_scaling.cpp.o"
  "CMakeFiles/bench_gateway_scaling.dir/bench_gateway_scaling.cpp.o.d"
  "bench_gateway_scaling"
  "bench_gateway_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gateway_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
