# Empty dependencies file for bench_gateway_scaling.
# This may be replaced when dependencies are built.
