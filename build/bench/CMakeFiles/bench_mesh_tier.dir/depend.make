# Empty dependencies file for bench_mesh_tier.
# This may be replaced when dependencies are built.
