file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_tier.dir/bench_mesh_tier.cpp.o"
  "CMakeFiles/bench_mesh_tier.dir/bench_mesh_tier.cpp.o.d"
  "bench_mesh_tier"
  "bench_mesh_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
