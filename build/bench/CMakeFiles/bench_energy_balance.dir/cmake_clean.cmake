file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_balance.dir/bench_energy_balance.cpp.o"
  "CMakeFiles/bench_energy_balance.dir/bench_energy_balance.cpp.o.d"
  "bench_energy_balance"
  "bench_energy_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
