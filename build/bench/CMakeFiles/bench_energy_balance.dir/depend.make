# Empty dependencies file for bench_energy_balance.
# This may be replaced when dependencies are built.
