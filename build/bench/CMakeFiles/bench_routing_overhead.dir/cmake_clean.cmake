file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_overhead.dir/bench_routing_overhead.cpp.o"
  "CMakeFiles/bench_routing_overhead.dir/bench_routing_overhead.cpp.o.d"
  "bench_routing_overhead"
  "bench_routing_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
