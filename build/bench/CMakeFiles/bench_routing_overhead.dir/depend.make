# Empty dependencies file for bench_routing_overhead.
# This may be replaced when dependencies are built.
