
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_routing_overhead.cpp" "bench/CMakeFiles/bench_routing_overhead.dir/bench_routing_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_routing_overhead.dir/bench_routing_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
