file(REMOVE_RECURSE
  "CMakeFiles/bench_sleep_scaling.dir/bench_sleep_scaling.cpp.o"
  "CMakeFiles/bench_sleep_scaling.dir/bench_sleep_scaling.cpp.o.d"
  "bench_sleep_scaling"
  "bench_sleep_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sleep_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
