# Empty dependencies file for bench_sleep_scaling.
# This may be replaced when dependencies are built.
