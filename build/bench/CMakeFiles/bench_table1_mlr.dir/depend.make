# Empty dependencies file for bench_table1_mlr.
# This may be replaced when dependencies are built.
