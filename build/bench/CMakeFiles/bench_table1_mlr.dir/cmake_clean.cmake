file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mlr.dir/bench_table1_mlr.cpp.o"
  "CMakeFiles/bench_table1_mlr.dir/bench_table1_mlr.cpp.o.d"
  "bench_table1_mlr"
  "bench_table1_mlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
