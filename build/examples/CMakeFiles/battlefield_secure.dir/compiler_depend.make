# Empty compiler generated dependencies file for battlefield_secure.
# This may be replaced when dependencies are built.
