file(REMOVE_RECURSE
  "CMakeFiles/battlefield_secure.dir/battlefield_secure.cpp.o"
  "CMakeFiles/battlefield_secure.dir/battlefield_secure.cpp.o.d"
  "battlefield_secure"
  "battlefield_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
