# Empty compiler generated dependencies file for wmsn_cli.
# This may be replaced when dependencies are built.
