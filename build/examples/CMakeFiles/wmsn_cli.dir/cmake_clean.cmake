file(REMOVE_RECURSE
  "CMakeFiles/wmsn_cli.dir/wmsn_cli.cpp.o"
  "CMakeFiles/wmsn_cli.dir/wmsn_cli.cpp.o.d"
  "wmsn_cli"
  "wmsn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
