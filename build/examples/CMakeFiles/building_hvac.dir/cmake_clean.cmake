file(REMOVE_RECURSE
  "CMakeFiles/building_hvac.dir/building_hvac.cpp.o"
  "CMakeFiles/building_hvac.dir/building_hvac.cpp.o.d"
  "building_hvac"
  "building_hvac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/building_hvac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
