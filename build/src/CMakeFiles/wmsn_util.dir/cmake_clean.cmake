file(REMOVE_RECURSE
  "CMakeFiles/wmsn_util.dir/util/bytes.cpp.o"
  "CMakeFiles/wmsn_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/wmsn_util.dir/util/csv.cpp.o"
  "CMakeFiles/wmsn_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/wmsn_util.dir/util/random.cpp.o"
  "CMakeFiles/wmsn_util.dir/util/random.cpp.o.d"
  "CMakeFiles/wmsn_util.dir/util/stats.cpp.o"
  "CMakeFiles/wmsn_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/wmsn_util.dir/util/svg.cpp.o"
  "CMakeFiles/wmsn_util.dir/util/svg.cpp.o.d"
  "CMakeFiles/wmsn_util.dir/util/table.cpp.o"
  "CMakeFiles/wmsn_util.dir/util/table.cpp.o.d"
  "libwmsn_util.a"
  "libwmsn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
