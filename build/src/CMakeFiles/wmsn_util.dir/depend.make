# Empty dependencies file for wmsn_util.
# This may be replaced when dependencies are built.
