file(REMOVE_RECURSE
  "libwmsn_util.a"
)
