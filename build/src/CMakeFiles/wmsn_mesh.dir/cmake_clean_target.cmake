file(REMOVE_RECURSE
  "libwmsn_mesh.a"
)
