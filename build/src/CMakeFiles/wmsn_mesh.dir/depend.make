# Empty dependencies file for wmsn_mesh.
# This may be replaced when dependencies are built.
