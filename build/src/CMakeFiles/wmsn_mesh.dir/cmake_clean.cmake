file(REMOVE_RECURSE
  "CMakeFiles/wmsn_mesh.dir/mesh/mesh_network.cpp.o"
  "CMakeFiles/wmsn_mesh.dir/mesh/mesh_network.cpp.o.d"
  "CMakeFiles/wmsn_mesh.dir/mesh/mesh_routing.cpp.o"
  "CMakeFiles/wmsn_mesh.dir/mesh/mesh_routing.cpp.o.d"
  "CMakeFiles/wmsn_mesh.dir/mesh/mesh_topology.cpp.o"
  "CMakeFiles/wmsn_mesh.dir/mesh/mesh_topology.cpp.o.d"
  "CMakeFiles/wmsn_mesh.dir/mesh/wmsn_stack.cpp.o"
  "CMakeFiles/wmsn_mesh.dir/mesh/wmsn_stack.cpp.o.d"
  "libwmsn_mesh.a"
  "libwmsn_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
