file(REMOVE_RECURSE
  "libwmsn_net.a"
)
