file(REMOVE_RECURSE
  "CMakeFiles/wmsn_net.dir/net/deployment.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/deployment.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/energy.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/energy.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/mac.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/mac.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/medium.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/medium.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/metrics.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/metrics.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/mobility.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/mobility.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/node.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/node.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/packet.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/radio.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/radio.cpp.o.d"
  "CMakeFiles/wmsn_net.dir/net/sensor_network.cpp.o"
  "CMakeFiles/wmsn_net.dir/net/sensor_network.cpp.o.d"
  "libwmsn_net.a"
  "libwmsn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
