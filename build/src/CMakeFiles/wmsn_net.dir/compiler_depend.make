# Empty compiler generated dependencies file for wmsn_net.
# This may be replaced when dependencies are built.
