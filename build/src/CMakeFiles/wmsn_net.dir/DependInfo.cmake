
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/deployment.cpp" "src/CMakeFiles/wmsn_net.dir/net/deployment.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/deployment.cpp.o.d"
  "/root/repo/src/net/energy.cpp" "src/CMakeFiles/wmsn_net.dir/net/energy.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/energy.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/CMakeFiles/wmsn_net.dir/net/mac.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/mac.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/CMakeFiles/wmsn_net.dir/net/medium.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/medium.cpp.o.d"
  "/root/repo/src/net/metrics.cpp" "src/CMakeFiles/wmsn_net.dir/net/metrics.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/metrics.cpp.o.d"
  "/root/repo/src/net/mobility.cpp" "src/CMakeFiles/wmsn_net.dir/net/mobility.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/mobility.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/wmsn_net.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/wmsn_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/CMakeFiles/wmsn_net.dir/net/radio.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/radio.cpp.o.d"
  "/root/repo/src/net/sensor_network.cpp" "src/CMakeFiles/wmsn_net.dir/net/sensor_network.cpp.o" "gcc" "src/CMakeFiles/wmsn_net.dir/net/sensor_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmsn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
