file(REMOVE_RECURSE
  "CMakeFiles/wmsn_crypto.dir/crypto/ctr.cpp.o"
  "CMakeFiles/wmsn_crypto.dir/crypto/ctr.cpp.o.d"
  "CMakeFiles/wmsn_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/wmsn_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/wmsn_crypto.dir/crypto/keystore.cpp.o"
  "CMakeFiles/wmsn_crypto.dir/crypto/keystore.cpp.o.d"
  "CMakeFiles/wmsn_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/wmsn_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/wmsn_crypto.dir/crypto/speck.cpp.o"
  "CMakeFiles/wmsn_crypto.dir/crypto/speck.cpp.o.d"
  "CMakeFiles/wmsn_crypto.dir/crypto/tesla.cpp.o"
  "CMakeFiles/wmsn_crypto.dir/crypto/tesla.cpp.o.d"
  "libwmsn_crypto.a"
  "libwmsn_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
