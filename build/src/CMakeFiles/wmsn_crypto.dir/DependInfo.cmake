
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/ctr.cpp" "src/CMakeFiles/wmsn_crypto.dir/crypto/ctr.cpp.o" "gcc" "src/CMakeFiles/wmsn_crypto.dir/crypto/ctr.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/wmsn_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/wmsn_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/keystore.cpp" "src/CMakeFiles/wmsn_crypto.dir/crypto/keystore.cpp.o" "gcc" "src/CMakeFiles/wmsn_crypto.dir/crypto/keystore.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/wmsn_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/wmsn_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/speck.cpp" "src/CMakeFiles/wmsn_crypto.dir/crypto/speck.cpp.o" "gcc" "src/CMakeFiles/wmsn_crypto.dir/crypto/speck.cpp.o.d"
  "/root/repo/src/crypto/tesla.cpp" "src/CMakeFiles/wmsn_crypto.dir/crypto/tesla.cpp.o" "gcc" "src/CMakeFiles/wmsn_crypto.dir/crypto/tesla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
