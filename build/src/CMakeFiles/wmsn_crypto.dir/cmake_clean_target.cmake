file(REMOVE_RECURSE
  "libwmsn_crypto.a"
)
