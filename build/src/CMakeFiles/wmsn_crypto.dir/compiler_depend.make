# Empty compiler generated dependencies file for wmsn_crypto.
# This may be replaced when dependencies are built.
