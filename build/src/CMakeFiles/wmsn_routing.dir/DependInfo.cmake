
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/diffusion.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/diffusion.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/diffusion.cpp.o.d"
  "/root/repo/src/routing/flooding.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/flooding.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/flooding.cpp.o.d"
  "/root/repo/src/routing/leach.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/leach.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/leach.cpp.o.d"
  "/root/repo/src/routing/messages.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/messages.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/messages.cpp.o.d"
  "/root/repo/src/routing/mlr.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/mlr.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/mlr.cpp.o.d"
  "/root/repo/src/routing/pegasis.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/pegasis.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/pegasis.cpp.o.d"
  "/root/repo/src/routing/protocol.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/protocol.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/protocol.cpp.o.d"
  "/root/repo/src/routing/secmlr.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/secmlr.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/secmlr.cpp.o.d"
  "/root/repo/src/routing/single_sink.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/single_sink.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/single_sink.cpp.o.d"
  "/root/repo/src/routing/spin.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/spin.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/spin.cpp.o.d"
  "/root/repo/src/routing/spr.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/spr.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/spr.cpp.o.d"
  "/root/repo/src/routing/teen.cpp" "src/CMakeFiles/wmsn_routing.dir/routing/teen.cpp.o" "gcc" "src/CMakeFiles/wmsn_routing.dir/routing/teen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
