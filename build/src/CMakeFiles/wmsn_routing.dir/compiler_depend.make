# Empty compiler generated dependencies file for wmsn_routing.
# This may be replaced when dependencies are built.
