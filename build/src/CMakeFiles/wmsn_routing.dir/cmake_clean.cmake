file(REMOVE_RECURSE
  "CMakeFiles/wmsn_routing.dir/routing/diffusion.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/diffusion.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/flooding.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/flooding.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/leach.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/leach.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/messages.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/messages.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/mlr.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/mlr.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/pegasis.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/pegasis.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/protocol.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/protocol.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/secmlr.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/secmlr.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/single_sink.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/single_sink.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/spin.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/spin.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/spr.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/spr.cpp.o.d"
  "CMakeFiles/wmsn_routing.dir/routing/teen.cpp.o"
  "CMakeFiles/wmsn_routing.dir/routing/teen.cpp.o.d"
  "libwmsn_routing.a"
  "libwmsn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
