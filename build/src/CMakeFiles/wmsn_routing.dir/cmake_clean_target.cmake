file(REMOVE_RECURSE
  "libwmsn_routing.a"
)
