
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cpp" "src/CMakeFiles/wmsn_core.dir/core/builder.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/builder.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/wmsn_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/wmsn_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/wmsn_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/wmsn_core.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/wmsn_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/wmsn_core.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/sweep.cpp.o.d"
  "/root/repo/src/core/topology_control.cpp" "src/CMakeFiles/wmsn_core.dir/core/topology_control.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/topology_control.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/CMakeFiles/wmsn_core.dir/core/trace.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/trace.cpp.o.d"
  "/root/repo/src/core/viz.cpp" "src/CMakeFiles/wmsn_core.dir/core/viz.cpp.o" "gcc" "src/CMakeFiles/wmsn_core.dir/core/viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmsn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmsn_attacks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
