file(REMOVE_RECURSE
  "CMakeFiles/wmsn_core.dir/core/builder.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/builder.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/config.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/config.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/experiment.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/metrics.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/placement.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/placement.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/report.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/report.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/sweep.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/sweep.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/topology_control.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/topology_control.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/trace.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/trace.cpp.o.d"
  "CMakeFiles/wmsn_core.dir/core/viz.cpp.o"
  "CMakeFiles/wmsn_core.dir/core/viz.cpp.o.d"
  "libwmsn_core.a"
  "libwmsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
