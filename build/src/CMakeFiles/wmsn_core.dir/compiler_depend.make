# Empty compiler generated dependencies file for wmsn_core.
# This may be replaced when dependencies are built.
