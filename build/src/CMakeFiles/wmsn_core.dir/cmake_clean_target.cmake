file(REMOVE_RECURSE
  "libwmsn_core.a"
)
