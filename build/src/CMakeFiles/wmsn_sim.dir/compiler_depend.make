# Empty compiler generated dependencies file for wmsn_sim.
# This may be replaced when dependencies are built.
