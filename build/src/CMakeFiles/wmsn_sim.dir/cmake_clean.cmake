file(REMOVE_RECURSE
  "CMakeFiles/wmsn_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/wmsn_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/wmsn_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/wmsn_sim.dir/sim/simulator.cpp.o.d"
  "libwmsn_sim.a"
  "libwmsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
