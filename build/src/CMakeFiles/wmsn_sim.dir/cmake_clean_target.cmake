file(REMOVE_RECURSE
  "libwmsn_sim.a"
)
