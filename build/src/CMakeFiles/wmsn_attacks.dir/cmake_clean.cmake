file(REMOVE_RECURSE
  "CMakeFiles/wmsn_attacks.dir/attacks/adversary.cpp.o"
  "CMakeFiles/wmsn_attacks.dir/attacks/adversary.cpp.o.d"
  "CMakeFiles/wmsn_attacks.dir/attacks/wormhole.cpp.o"
  "CMakeFiles/wmsn_attacks.dir/attacks/wormhole.cpp.o.d"
  "libwmsn_attacks.a"
  "libwmsn_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmsn_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
