# Empty dependencies file for wmsn_attacks.
# This may be replaced when dependencies are built.
