file(REMOVE_RECURSE
  "libwmsn_attacks.a"
)
